package graph

import (
	"math/rand"
	"testing"
)

// sameGraph reports whether two graphs have identical node counts and
// byte-identical CSR contents (offsets and adjacency).
func sameGraph(a, b *Undirected) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := int32(0); int(v) < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

// messyEdges draws count edges over n nodes with duplicates in both
// orientations — the messiest input FromEdges must normalise.
func messyEdges(r *rand.Rand, n, count int) []Edge {
	edges := make([]Edge, 0, count)
	for len(edges) < count {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v {
			continue
		}
		if r.Intn(2) == 0 {
			u, v = v, u // random orientation
		}
		edges = append(edges, Edge{U: u, V: v})
		if r.Intn(4) == 0 {
			edges = append(edges, Edge{U: v, V: u}) // duplicate, flipped
		}
	}
	return edges
}

func TestBuilderMatchesNewFromEdges(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	b := NewBuilder()
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(60)
		edges := messyEdges(r, n, r.Intn(4*n))
		want, err := NewFromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		if !sameGraph(want, got) {
			t.Fatalf("trial %d (n=%d, %d edges): builder and NewFromEdges disagree", trial, n, len(edges))
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	if _, err := b.FromEdges(-1, nil); err == nil {
		t.Error("negative n: want error")
	}
	if _, err := b.FromEdges(3, []Edge{{U: 0, V: 3}}); err == nil {
		t.Error("out-of-range endpoint: want error")
	}
	if _, err := b.FromEdges(3, []Edge{{U: 1, V: 1}}); err == nil {
		t.Error("self-loop: want error")
	}
	if _, err := b.Complete(-1); err == nil {
		t.Error("negative n complete: want error")
	}
	// A failed build must not poison the next one.
	g, err := b.FromEdges(2, []Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Errorf("M = %d after failed builds, want 1", g.M())
	}
}

func TestBuilderDoubleBufferLifetime(t *testing.T) {
	// A built graph must survive one subsequent build (the deployer builds
	// the next trial's graph while the previous network is still live) and
	// only be reclaimed by the second-next.
	b := NewBuilder()
	g1, err := b.FromEdges(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewFromEdges(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.FromEdges(5, []Edge{{U: 0, V: 4}, {U: 1, V: 2}, {U: 1, V: 3}}); err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g1, want) {
		t.Error("graph from build i corrupted during build i+1")
	}
}

func TestBuilderCompleteMatchesEdgeList(t *testing.T) {
	b := NewBuilder()
	for _, n := range []int{0, 1, 2, 3, 7, 20} {
		got, err := b.Complete(n)
		if err != nil {
			t.Fatal(err)
		}
		var edges []Edge
		for u := int32(0); int(u) < n; u++ {
			for v := u + 1; int(v) < n; v++ {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
		want, err := NewFromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		if !sameGraph(want, got) {
			t.Errorf("n=%d: direct-CSR complete graph differs from edge-list build", n)
		}
		if got.M() != n*(n-1)/2 {
			t.Errorf("n=%d: M = %d, want %d", n, got.M(), n*(n-1)/2)
		}
	}
}

func TestBuilderScratchReuse(t *testing.T) {
	b := NewBuilder()
	edges := b.EdgeScratch()
	*edges = append((*edges)[:0], Edge{U: 0, V: 1}, Edge{U: 1, V: 2})
	g, err := b.FromEdges(3, *edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	// The grown capacity must persist in the builder.
	if cap(*b.EdgeScratch()) < 2 {
		t.Error("edge scratch capacity not retained")
	}
	nodes := b.NodeScratch()
	*nodes = append((*nodes)[:0], 1, 2, 3)
	if cap(*b.NodeScratch()) < 3 {
		t.Error("node scratch capacity not retained")
	}
}

func FuzzBuilderMatchesNewFromEdges(f *testing.F) {
	f.Add(int64(1), uint8(10), uint16(30))
	f.Add(int64(7), uint8(2), uint16(1))
	f.Add(int64(99), uint8(40), uint16(400))
	b := NewBuilder()
	f.Fuzz(func(t *testing.T, seed int64, n uint8, count uint16) {
		nodes := 2 + int(n)%64
		r := rand.New(rand.NewSource(seed))
		edges := messyEdges(r, nodes, int(count)%256)
		want, err := NewFromEdges(nodes, edges)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.FromEdges(nodes, edges)
		if err != nil {
			t.Fatal(err)
		}
		if !sameGraph(want, got) {
			t.Fatalf("builder and NewFromEdges disagree (n=%d, %d edges)", nodes, len(edges))
		}
	})
}
