// Package graph provides the immutable undirected graph representation used
// throughout the library, plus the set operations the paper's model needs —
// in particular edge-set intersection, because the studied WSN topology is
// the intersection G_q(n,K,P) ∩ G(n,p) of two random graphs on a common node
// set (eq. (1) of the paper).
//
// Graphs are stored in compressed sparse row (CSR) form with sorted
// adjacency, giving O(1) degree queries, O(log d) edge tests, and cache
// friendly traversal. Node identifiers are dense int32 indices [0, N).
// A graph is immutable after construction, so neighbor slices can be handed
// out as read-only views without defensive copies on the hot paths.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is an undirected edge between two node indices. Construction
// normalises every edge so that U < V.
type Edge struct {
	U, V int32
}

// Undirected is an immutable simple undirected graph.
type Undirected struct {
	n   int
	m   int
	off []int32 // off[v]..off[v+1] delimit v's neighbors in adj
	adj []int32 // concatenated sorted adjacency lists
}

// NewFromEdges builds a graph on n nodes from the given edge list.
// Endpoints must lie in [0, n); self-loops are rejected; duplicate edges
// (in either orientation) are merged.
//
// NewFromEdges is the one-shot form of Builder.FromEdges: the fresh builder
// is dropped after the build, so the returned graph owns its storage for
// good. Repeated-sampling loops should hold a Builder instead.
func NewFromEdges(n int, edges []Edge) (*Undirected, error) {
	return NewBuilder().FromEdges(n, edges)
}

// N returns the number of nodes.
func (g *Undirected) N() int { return g.n }

// M returns the number of edges.
func (g *Undirected) M() int { return g.m }

// Degree returns the degree of node v.
func (g *Undirected) Degree(v int32) int {
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the sorted neighbor list of v as a read-only view.
// Callers must not modify the returned slice; the graph is immutable and the
// view stays valid for the graph's lifetime.
func (g *Undirected) Neighbors(v int32) []int32 {
	return g.adj[g.off[v]:g.off[v+1]]
}

// HasEdge reports whether {u, v} is an edge, by binary search on the shorter
// adjacency list.
func (g *Undirected) HasEdge(u, v int32) bool {
	if u == v || u < 0 || v < 0 || int(u) >= g.n || int(v) >= g.n {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Edges returns a fresh copy of the edge list with U < V in each edge,
// ordered by (U, V).
func (g *Undirected) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	g.ForEachEdge(func(u, v int32) bool {
		out = append(out, Edge{U: u, V: v})
		return true
	})
	return out
}

// ForEachEdge visits each undirected edge exactly once with u < v, in
// lexicographic order. Iteration stops early if fn returns false.
func (g *Undirected) ForEachEdge(fn func(u, v int32) bool) {
	for u := int32(0); int(u) < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			if !fn(u, v) {
				return
			}
		}
	}
}

// MinDegree returns the minimum node degree; it returns 0 for the empty
// graph.
func (g *Undirected) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := int32(1); int(v) < g.n; v++ {
		if d := g.Degree(v); d < min {
			min = d
		}
	}
	return min
}

// MaxDegree returns the maximum node degree, 0 for the empty graph.
func (g *Undirected) MaxDegree() int {
	max := 0
	for v := int32(0); int(v) < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// DegreeHistogram returns counts[h] = number of nodes with degree h,
// for h in [0, MaxDegree()].
func (g *Undirected) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := int32(0); int(v) < g.n; v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// Intersect returns the graph on the common node set whose edge set is the
// intersection of a's and b's — the composition operation of eq. (1).
func Intersect(a, b *Undirected) (*Undirected, error) {
	if a.n != b.n {
		return nil, fmt.Errorf("graph: intersect node count mismatch %d != %d", a.n, b.n)
	}
	small, large := a, b
	if small.m > large.m {
		small, large = large, small
	}
	var edges []Edge
	small.ForEachEdge(func(u, v int32) bool {
		if large.HasEdge(u, v) {
			edges = append(edges, Edge{U: u, V: v})
		}
		return true
	})
	return NewFromEdges(a.n, edges)
}

// Union returns the graph whose edge set is the union of a's and b's.
func Union(a, b *Undirected) (*Undirected, error) {
	if a.n != b.n {
		return nil, fmt.Errorf("graph: union node count mismatch %d != %d", a.n, b.n)
	}
	edges := make([]Edge, 0, a.m+b.m)
	a.ForEachEdge(func(u, v int32) bool {
		edges = append(edges, Edge{U: u, V: v})
		return true
	})
	b.ForEachEdge(func(u, v int32) bool {
		edges = append(edges, Edge{U: u, V: v})
		return true
	})
	return NewFromEdges(a.n, edges)
}

// IsSpanningSubgraphOf reports whether every edge of g is an edge of h and
// both graphs share the node count — the containment relation used by the
// paper's coupling arguments (Lemmas 3–6).
func (g *Undirected) IsSpanningSubgraphOf(h *Undirected) bool {
	if g.n != h.n {
		return false
	}
	ok := true
	g.ForEachEdge(func(u, v int32) bool {
		if !h.HasEdge(u, v) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// InducedSubgraph returns the subgraph induced by the nodes with alive[v]
// true, with nodes relabelled densely, plus origID mapping each new index to
// its original node. len(alive) must equal g.N().
func InducedSubgraph(g *Undirected, alive []bool) (*Undirected, []int32, error) {
	if len(alive) != g.n {
		return nil, nil, fmt.Errorf("graph: alive mask length %d != node count %d", len(alive), g.n)
	}
	newID := make([]int32, g.n)
	var origID []int32
	for v := 0; v < g.n; v++ {
		if alive[v] {
			newID[v] = int32(len(origID))
			origID = append(origID, int32(v))
		} else {
			newID[v] = -1
		}
	}
	var edges []Edge
	g.ForEachEdge(func(u, v int32) bool {
		if alive[u] && alive[v] {
			edges = append(edges, Edge{U: newID[u], V: newID[v]})
		}
		return true
	})
	sub, err := NewFromEdges(len(origID), edges)
	if err != nil {
		return nil, nil, err
	}
	return sub, origID, nil
}

// Complete returns the complete graph K_n, constructed directly in CSR form
// (K_n is fully determined by n; no intermediate O(n²) edge list is built).
func Complete(n int) (*Undirected, error) {
	return NewBuilder().Complete(n)
}

// DOT renders the graph in Graphviz DOT format, for debugging and
// documentation.
func (g *Undirected) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", name)
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&b, "  %d;\n", v)
	}
	g.ForEachEdge(func(u, v int32) bool {
		fmt.Fprintf(&b, "  %d -- %d;\n", u, v)
		return true
	})
	b.WriteString("}\n")
	return b.String()
}

// Density returns 2m / (n(n−1)), the fraction of possible edges present;
// 0 for graphs with fewer than two nodes.
func (g *Undirected) Density() float64 {
	if g.n < 2 {
		return 0
	}
	return 2 * float64(g.m) / (float64(g.n) * float64(g.n-1))
}
