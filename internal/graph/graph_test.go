package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// mustGraph builds a graph or fails the test.
func mustGraph(t *testing.T, n int, edges []Edge) *Undirected {
	t.Helper()
	g, err := NewFromEdges(n, edges)
	if err != nil {
		t.Fatalf("NewFromEdges: %v", err)
	}
	return g
}

func TestNewFromEdgesValidation(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{name: "negative n", n: -1, edges: nil},
		{name: "endpoint too large", n: 3, edges: []Edge{{U: 0, V: 3}}},
		{name: "negative endpoint", n: 3, edges: []Edge{{U: -1, V: 1}}},
		{name: "self loop", n: 3, edges: []Edge{{U: 2, V: 2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewFromEdges(tt.n, tt.edges); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestEmptyGraph(t *testing.T) {
	g := mustGraph(t, 0, nil)
	if g.N() != 0 || g.M() != 0 {
		t.Errorf("empty graph N=%d M=%d", g.N(), g.M())
	}
	if g.MinDegree() != 0 || g.MaxDegree() != 0 {
		t.Error("empty graph degrees not 0")
	}
	if g.Density() != 0 {
		t.Error("empty graph density not 0")
	}
}

func TestBasicProperties(t *testing.T) {
	// Path 0-1-2 plus isolated node 3.
	g := mustGraph(t, 4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("N=%d M=%d, want 4, 2", g.N(), g.M())
	}
	wantDeg := []int{1, 2, 1, 0}
	for v, w := range wantDeg {
		if got := g.Degree(int32(v)); got != w {
			t.Errorf("Degree(%d) = %d, want %d", v, got, w)
		}
	}
	if g.MinDegree() != 0 || g.MaxDegree() != 2 {
		t.Errorf("min/max degree = %d/%d, want 0/2", g.MinDegree(), g.MaxDegree())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge(0,1) false")
	}
	if g.HasEdge(0, 2) || g.HasEdge(0, 3) || g.HasEdge(2, 2) {
		t.Error("HasEdge returned true for a non-edge")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Error("HasEdge out of range returned true")
	}
	hist := g.DegreeHistogram()
	want := []int{1, 2, 1}
	for h, c := range want {
		if hist[h] != c {
			t.Errorf("DegreeHistogram[%d] = %d, want %d", h, hist[h], c)
		}
	}
}

func TestDuplicateEdgesMerged(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{U: 0, V: 1}, {U: 1, V: 0}, {U: 0, V: 1}})
	if g.M() != 1 {
		t.Errorf("M = %d, want 1 after dedup", g.M())
	}
	if got := g.Degree(0); got != 1 {
		t.Errorf("Degree(0) = %d, want 1", got)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := mustGraph(t, 5, []Edge{{U: 4, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}, {U: 1, V: 2}})
	ns := g.Neighbors(2)
	want := []int32{0, 1, 3, 4}
	if len(ns) != len(want) {
		t.Fatalf("Neighbors(2) = %v, want %v", ns, want)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", ns, want)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{U: 3, V: 1}, {U: 0, V: 2}, {U: 1, V: 0}}
	g := mustGraph(t, 4, in)
	out := g.Edges()
	if len(out) != 3 {
		t.Fatalf("Edges() = %v", out)
	}
	for _, e := range out {
		if e.U >= e.V {
			t.Errorf("edge %v not normalised U < V", e)
		}
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("edge %v missing from graph", e)
		}
	}
}

func TestForEachEdgeEarlyStop(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	count := 0
	g.ForEachEdge(func(u, v int32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d edges, want 2", count)
	}
}

func TestIntersect(t *testing.T) {
	a := mustGraph(t, 4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	b := mustGraph(t, 4, []Edge{{U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 3}})
	got, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != 2 || !got.HasEdge(1, 2) || !got.HasEdge(2, 3) || got.HasEdge(0, 1) {
		t.Errorf("Intersect edges = %v", got.Edges())
	}
	if _, err := Intersect(a, mustGraph(t, 5, nil)); err == nil {
		t.Error("Intersect size mismatch: want error")
	}
}

func TestUnion(t *testing.T) {
	a := mustGraph(t, 3, []Edge{{U: 0, V: 1}})
	b := mustGraph(t, 3, []Edge{{U: 1, V: 2}, {U: 0, V: 1}})
	got, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != 2 || !got.HasEdge(0, 1) || !got.HasEdge(1, 2) {
		t.Errorf("Union edges = %v", got.Edges())
	}
	if _, err := Union(a, mustGraph(t, 4, nil)); err == nil {
		t.Error("Union size mismatch: want error")
	}
}

func TestIsSpanningSubgraphOf(t *testing.T) {
	small := mustGraph(t, 4, []Edge{{U: 0, V: 1}})
	big := mustGraph(t, 4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if !small.IsSpanningSubgraphOf(big) {
		t.Error("small ⊑ big should hold")
	}
	if big.IsSpanningSubgraphOf(small) {
		t.Error("big ⊑ small should not hold")
	}
	other := mustGraph(t, 5, []Edge{{U: 0, V: 1}})
	if small.IsSpanningSubgraphOf(other) {
		t.Error("different node counts cannot be spanning subgraphs")
	}
	if !small.IsSpanningSubgraphOf(small) {
		t.Error("reflexivity failed")
	}
}

func TestInducedSubgraph(t *testing.T) {
	// Cycle 0-1-2-3-0; drop node 3.
	g := mustGraph(t, 4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	sub, orig, err := InducedSubgraph(g, []bool{true, true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("sub N=%d M=%d, want 3, 2", sub.N(), sub.M())
	}
	if len(orig) != 3 || orig[0] != 0 || orig[1] != 1 || orig[2] != 2 {
		t.Errorf("origID = %v", orig)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Errorf("sub edges = %v", sub.Edges())
	}
	if _, _, err := InducedSubgraph(g, []bool{true}); err == nil {
		t.Error("mask length mismatch: want error")
	}
}

func TestInducedSubgraphAllDead(t *testing.T) {
	g := mustGraph(t, 2, []Edge{{U: 0, V: 1}})
	sub, orig, err := InducedSubgraph(g, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 0 || len(orig) != 0 {
		t.Errorf("empty induced subgraph N=%d orig=%v", sub.N(), orig)
	}
}

func TestComplete(t *testing.T) {
	g, err := Complete(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 10 || g.MinDegree() != 4 {
		t.Errorf("K5: M=%d minDeg=%d", g.M(), g.MinDegree())
	}
	if g.Density() != 1 {
		t.Errorf("K5 density = %v", g.Density())
	}
}

func TestDOT(t *testing.T) {
	g := mustGraph(t, 2, []Edge{{U: 0, V: 1}})
	dot := g.DOT("g")
	for _, want := range []string{"graph g {", "0 -- 1;", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// randomEdges produces a reproducible random edge list on n nodes.
func randomEdges(r *rand.Rand, n, m int) []Edge {
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, Edge{U: u, V: v})
	}
	return edges
}

func TestQuickDegreeSumEquals2M(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		g, err := NewFromEdges(n, randomEdges(r, n, r.Intn(150)))
		if err != nil {
			return false
		}
		sum := 0
		for v := int32(0); int(v) < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectIsSubgraphOfBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		a, err := NewFromEdges(n, randomEdges(r, n, r.Intn(100)))
		if err != nil {
			return false
		}
		b, err := NewFromEdges(n, randomEdges(r, n, r.Intn(100)))
		if err != nil {
			return false
		}
		inter, err := Intersect(a, b)
		if err != nil {
			return false
		}
		if !inter.IsSpanningSubgraphOf(a) || !inter.IsSpanningSubgraphOf(b) {
			return false
		}
		// Every common edge must be present.
		missing := false
		a.ForEachEdge(func(u, v int32) bool {
			if b.HasEdge(u, v) && !inter.HasEdge(u, v) {
				missing = true
				return false
			}
			return true
		})
		return !missing
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionContainsBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		a, err := NewFromEdges(n, randomEdges(r, n, r.Intn(100)))
		if err != nil {
			return false
		}
		b, err := NewFromEdges(n, randomEdges(r, n, r.Intn(100)))
		if err != nil {
			return false
		}
		u, err := Union(a, b)
		if err != nil {
			return false
		}
		return a.IsSpanningSubgraphOf(u) && b.IsSpanningSubgraphOf(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickEdgesMatchHasEdge(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		g, err := NewFromEdges(n, randomEdges(r, n, r.Intn(100)))
		if err != nil {
			return false
		}
		listed := make(map[[2]int32]bool)
		for _, e := range g.Edges() {
			listed[[2]int32{e.U, e.V}] = true
		}
		if len(listed) != g.M() {
			return false
		}
		for u := int32(0); int(u) < n; u++ {
			for v := u + 1; int(v) < n; v++ {
				if g.HasEdge(u, v) != listed[[2]int32{u, v}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkNewFromEdges(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	edges := randomEdges(r, 1000, 8000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewFromEdges(1000, edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHasEdge(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	g, err := NewFromEdges(1000, randomEdges(r, 1000, 8000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.HasEdge(int32(i%1000), int32((i*7)%1000))
	}
}
