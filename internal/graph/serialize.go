package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonGraph is the stable on-disk JSON form of an undirected graph.
type jsonGraph struct {
	Nodes int        `json:"nodes"`
	Edges [][2]int32 `json:"edges"`
}

// MarshalJSON encodes the graph as {"nodes": n, "edges": [[u,v], ...]} with
// normalised (u < v), lexicographically ordered edges.
func (g *Undirected) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Nodes: g.n, Edges: make([][2]int32, 0, g.m)}
	g.ForEachEdge(func(u, v int32) bool {
		jg.Edges = append(jg.Edges, [2]int32{u, v})
		return true
	})
	return json.Marshal(jg)
}

// UnmarshalGraphJSON decodes a graph previously produced by MarshalJSON
// (or hand-written in the same schema).
func UnmarshalGraphJSON(data []byte) (*Undirected, error) {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, fmt.Errorf("graph: decode json: %w", err)
	}
	edges := make([]Edge, len(jg.Edges))
	for i, e := range jg.Edges {
		edges[i] = Edge{U: e[0], V: e[1]}
	}
	g, err := NewFromEdges(jg.Nodes, edges)
	if err != nil {
		return nil, fmt.Errorf("graph: decode json: %w", err)
	}
	return g, nil
}

// WriteEdgeList writes the graph in the ubiquitous two-column edge-list
// text format ("u v" per line, u < v, preceded by a "# nodes N" header so
// isolated vertices survive the round trip).
func (g *Undirected) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes %d\n", g.n); err != nil {
		return fmt.Errorf("graph: write edge list: %w", err)
	}
	var outerErr error
	g.ForEachEdge(func(u, v int32) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			outerErr = err
			return false
		}
		return true
	})
	if outerErr != nil {
		return fmt.Errorf("graph: write edge list: %w", outerErr)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: write edge list: %w", err)
	}
	return nil
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines starting
// with '#' other than the node-count header are ignored as comments.
func ReadEdgeList(r io.Reader) (*Undirected, error) {
	sc := bufio.NewScanner(r)
	nodes := -1
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			var n int
			if _, err := fmt.Sscanf(text, "# nodes %d", &n); err == nil {
				nodes = n
			}
			continue
		}
		var u, v int32
		if _, err := fmt.Sscanf(text, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %q: %w", line, text, err)
		}
		edges = append(edges, Edge{U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read edge list: %w", err)
	}
	if nodes < 0 {
		// No header: infer from the largest endpoint.
		for _, e := range edges {
			if int(e.U)+1 > nodes {
				nodes = int(e.U) + 1
			}
			if int(e.V)+1 > nodes {
				nodes = int(e.V) + 1
			}
		}
		if nodes < 0 {
			nodes = 0
		}
	}
	g, err := NewFromEdges(nodes, edges)
	if err != nil {
		return nil, fmt.Errorf("graph: read edge list: %w", err)
	}
	return g, nil
}
