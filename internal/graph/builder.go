package graph

import (
	"fmt"
	"slices"
)

// Builder constructs CSR graphs from edge lists with reusable scratch, so a
// Monte Carlo loop that samples a fresh topology every trial approaches zero
// steady-state allocation. The builder owns the degree/cursor scratch and a
// double-buffered arena of CSR storage (offsets, adjacency, and the
// Undirected header itself): a graph returned by FromEdges stays valid
// through the next build and is invalidated by the second-next one — the same
// lifetime contract wsn.Deployer.Deploy imposes on the networks it returns.
//
// A Builder also loans out generic sampling scratch (EdgeScratch,
// NodeScratch) so stateless samplers — the channel models — can run
// allocation-free through a caller-owned builder. A Builder is not safe for
// concurrent use.
type Builder struct {
	deg    []int32
	cursor []int32

	arenas [2]builderArena
	next   int // arena index the next build writes into

	edges []Edge  // loaned via EdgeScratch
	nodes []int32 // loaned via NodeScratch
}

// builderArena is one of the builder's two CSR buffers. The Undirected
// header lives in the arena too, so repeated builds do not even allocate the
// graph struct.
type builderArena struct {
	off []int32
	adj []int32
	g   Undirected
}

// NewBuilder returns an empty Builder; buffers grow on demand and are then
// reused.
func NewBuilder() *Builder { return &Builder{} }

// EdgeScratch returns the builder's reusable edge buffer. Callers truncate
// it to zero length, append the edges of the current sample, and pass it to
// FromEdges; appending through the returned pointer persists capacity growth
// in the builder, so steady-state sampling allocates nothing.
func (b *Builder) EdgeScratch() *[]Edge { return &b.edges }

// NodeScratch returns a reusable int32 buffer for samplers that need
// per-node scratch (class bucketing, position grids). Same reuse discipline
// as EdgeScratch.
func (b *Builder) NodeScratch() *[]int32 { return &b.nodes }

// FromEdges builds a graph on n nodes from the given edge list, with
// NewFromEdges semantics: endpoints must lie in [0, n), self-loops are
// rejected, duplicate edges (in either orientation) are merged. The returned
// graph aliases builder storage: it remains valid until the second-next
// FromEdges/Complete call on this builder.
func (b *Builder) FromEdges(n int, edges []Edge) (*Undirected, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop at node %d", e.U)
		}
	}
	deg := b.scratchInt32(&b.deg, n)
	for i := range deg {
		deg[i] = 0
	}
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	a := &b.arenas[b.next]
	b.next ^= 1
	if cap(a.off) < n+1 {
		a.off = make([]int32, n+1)
	}
	off := a.off[:n+1]
	off[0] = 0
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	if cap(a.adj) < int(off[n]) {
		a.adj = make([]int32, off[n])
	}
	adj := a.adj[:off[n]]
	cursor := b.scratchInt32(&b.cursor, n)
	copy(cursor, off[:n])
	for _, e := range edges {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	// Sort each adjacency list and drop duplicates in place, compacting the
	// offsets as we go. off is rewritten behind the read position, which is
	// safe because the write index never overtakes the read index.
	w := int32(0)
	lo := int32(0)
	for v := 0; v < n; v++ {
		hi := off[v+1]
		seg := adj[lo:hi]
		slices.Sort(seg)
		lo = hi
		start := w
		var prev int32 = -1
		for _, u := range seg {
			if u != prev {
				adj[w] = u
				w++
				prev = u
			}
		}
		off[v] = start
	}
	off[n] = w
	// Shift: off[v] now holds the *start* of v's compacted list, which is the
	// CSR convention already (off[v]..off[v+1]).
	a.g = Undirected{n: n, m: int(w) / 2, off: off, adj: adj[:w]}
	return &a.g, nil
}

// Complete builds the complete graph K_n directly in CSR form — no O(n²)
// intermediate edge list; the adjacency of every node v is just the sorted
// node set minus v. Same arena lifetime contract as FromEdges.
func (b *Builder) Complete(n int) (*Undirected, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	a := &b.arenas[b.next]
	b.next ^= 1
	if cap(a.off) < n+1 {
		a.off = make([]int32, n+1)
	}
	off := a.off[:n+1]
	total := n * (n - 1)
	if cap(a.adj) < total {
		a.adj = make([]int32, total)
	}
	adj := a.adj[:total]
	for v := 0; v <= n; v++ {
		off[v] = int32(v * (n - 1))
	}
	for v := 0; v < n; v++ {
		row := adj[off[v]:off[v+1]]
		i := 0
		for u := 0; u < n; u++ {
			if u != v {
				row[i] = int32(u)
				i++
			}
		}
	}
	a.g = Undirected{n: n, m: total / 2, off: off, adj: adj}
	return &a.g, nil
}

// scratchInt32 resizes *buf to n entries (contents unspecified) reusing its
// capacity.
func (b *Builder) scratchInt32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
