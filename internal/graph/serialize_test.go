package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	g := mustGraph(t, 5, []Edge{{U: 0, V: 1}, {U: 3, V: 2}})
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGraphJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSpanningSubgraphOf(back) || !back.IsSpanningSubgraphOf(g) {
		t.Error("JSON round trip changed the graph")
	}
	if back.N() != 5 {
		t.Errorf("round trip N = %d (isolated node lost?)", back.N())
	}
}

func TestJSONStableEncoding(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{U: 2, V: 1}, {U: 1, V: 0}})
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"nodes":3,"edges":[[0,1],[1,2]]}`
	if string(data) != want {
		t.Errorf("encoding = %s, want %s", data, want)
	}
}

func TestUnmarshalGraphJSONErrors(t *testing.T) {
	if _, err := UnmarshalGraphJSON([]byte("{")); err == nil {
		t.Error("malformed json: want error")
	}
	if _, err := UnmarshalGraphJSON([]byte(`{"nodes":2,"edges":[[0,5]]}`)); err == nil {
		t.Error("edge out of range: want error")
	}
	if _, err := UnmarshalGraphJSON([]byte(`{"nodes":2,"edges":[[1,1]]}`)); err == nil {
		t.Error("self loop: want error")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := mustGraph(t, 6, []Edge{{U: 0, V: 5}, {U: 2, V: 3}, {U: 0, V: 1}})
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# nodes 6\n") {
		t.Errorf("missing header: %q", out)
	}
	back, err := ReadEdgeList(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 6 || !g.IsSpanningSubgraphOf(back) || !back.IsSpanningSubgraphOf(g) {
		t.Error("edge list round trip changed the graph")
	}
}

func TestReadEdgeListWithoutHeader(t *testing.T) {
	in := "0 1\n# a comment\n2 4\n\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 2 {
		t.Errorf("inferred N=%d M=%d, want 5, 2", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0 not-a-number\n")); err == nil {
		t.Error("garbage line: want error")
	}
	g, err := ReadEdgeList(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 {
		t.Errorf("empty input N = %d", g.N())
	}
}

func TestQuickSerializationRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		g, err := NewFromEdges(n, randomEdges(r, n, r.Intn(80)))
		if err != nil {
			return false
		}
		data, err := g.MarshalJSON()
		if err != nil {
			return false
		}
		viaJSON, err := UnmarshalGraphJSON(data)
		if err != nil {
			return false
		}
		var sb strings.Builder
		if err := g.WriteEdgeList(&sb); err != nil {
			return false
		}
		viaText, err := ReadEdgeList(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		same := func(a, b *Undirected) bool {
			return a.N() == b.N() && a.IsSpanningSubgraphOf(b) && b.IsSpanningSubgraphOf(a)
		}
		return same(g, viaJSON) && same(g, viaText)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
