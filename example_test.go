package qcomposite_test

import (
	"fmt"

	"github.com/secure-wsn/qcomposite"
)

// ExampleModel demonstrates the exact link probabilities of the paper's
// model (eqs. (3)–(5)) for Figure 1's parameterisation.
func ExampleModel() {
	m := qcomposite.Model{N: 1000, K: 50, P: 10000, Q: 2, ChannelOn: 0.5}
	s, _ := m.KeyShareProbability()
	t, _ := m.EdgeProbability()
	fmt.Printf("s = %.5f\n", s)
	fmt.Printf("t = %.5f\n", t)
	// Output:
	// s = 0.02577
	// t = 0.01288
}

// ExampleModel_theoreticalKConnProb evaluates Theorem 1's asymptotically
// exact k-connectivity probability.
func ExampleModel_theoreticalKConnProb() {
	m := qcomposite.Model{N: 1000, K: 50, P: 10000, Q: 2, ChannelOn: 0.5}
	for k := 1; k <= 3; k++ {
		p, _ := m.TheoreticalKConnProb(k)
		fmt.Printf("P[%d-connected] = %.4f\n", k, p)
	}
	// Output:
	// P[1-connected] = 0.9975
	// P[2-connected] = 0.9826
	// P[3-connected] = 0.9412
}

// ExampleThresholdK reproduces the first entry of the paper's K* table:
// the exact eq. (5) evaluation gives 36 where the paper's asymptotic
// computation prints 35.
func ExampleThresholdK() {
	exact, _ := qcomposite.ThresholdK(1000, 10000, 2, 1)
	asym, _ := qcomposite.ThresholdKAsymptotic(1000, 10000, 2, 1)
	fmt.Printf("exact K* = %d, asymptotic K* = %d\n", exact, asym)
	// Output:
	// exact K* = 36, asymptotic K* = 35
}

// ExampleDesignK sizes the key ring for a 99% probability of surviving any
// single sensor failure (2-connectivity).
func ExampleDesignK() {
	k, _ := qcomposite.DesignK(1000, 10000, 2, 0.5, 2, 0.99)
	fmt.Printf("minimum ring size: %d keys\n", k)
	// Output:
	// minimum ring size: 51 keys
}
