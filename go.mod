module github.com/secure-wsn/qcomposite

go 1.24
