// Design guidelines: dimensioning a real deployment with the paper's
// theory, the workflow of Section III's discussion.
//
// Scenario: an operator must deploy n sensors in a harsh environment where
// only a fraction p of channels work. Sensor memory is scarce, so the key
// ring must be as small as possible — but the network must stay connected
// even if two sensors die (3-connectivity) with 99% probability. The example
// walks the trade-off across environments and overlap requirements and
// prints the memory cost of robustness.
//
// Run with: go run ./examples/design-guidelines
package main

import (
	"fmt"
	"log"

	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("design-guidelines: ")

	const (
		n      = 2000
		pool   = 20000 // pool scales linearly with n (paper's Section III)
		target = 0.99
	)

	fmt.Printf("Deployment: n=%d sensors, pool P=%d, target probability %.2f\n\n", n, pool, target)

	// 1. Memory cost of link unreliability: as channels degrade, each
	//    sensor must carry more keys to keep 2-connectivity.
	fmt.Println("Key ring size needed for 99% 2-connectivity as channels degrade (q=2):")
	t1 := experiment.NewTable("channel on-probability p", "min ring K", "keys of memory wasted vs p=1")
	base := 0
	for _, p := range []float64{1.0, 0.8, 0.6, 0.4, 0.2} {
		ring, err := core.DesignK(n, pool, 2, p, 2, target)
		if err != nil {
			log.Fatal(err)
		}
		if p == 1.0 {
			base = ring
		}
		t1.AddRow(fmt.Sprintf("%.1f", p), fmt.Sprintf("%d", ring), fmt.Sprintf("+%d", ring-base))
	}
	if err := t1.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 2. Security/memory trade-off in q: a larger overlap requirement
	//    strengthens links against small-scale capture (see the
	//    attack-resilience example) but costs keys.
	fmt.Println("\nKey ring size needed for 99% 2-connectivity as q grows (p=0.5):")
	t2 := experiment.NewTable("q", "min ring K", "edge probability t at that K")
	for q := 1; q <= 4; q++ {
		ring, err := core.DesignK(n, pool, q, 0.5, 2, target)
		if err != nil {
			log.Fatal(err)
		}
		m := core.Model{N: n, K: ring, P: pool, Q: q, ChannelOn: 0.5}
		tProb, err := m.EdgeProbability()
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRow(fmt.Sprintf("%d", q), fmt.Sprintf("%d", ring), fmt.Sprintf("%.5f", tProb))
	}
	if err := t2.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 3. Robustness ladder: the marginal memory cost of each extra level of
	//    k-connectivity at fixed q and p.
	fmt.Println("\nMemory cost of robustness (q=2, p=0.5):")
	t3 := experiment.NewTable("k (survives k-1 failures)", "min ring K", "theory P[k-conn]")
	for k := 1; k <= 4; k++ {
		ring, err := core.DesignK(n, pool, 2, 0.5, k, target)
		if err != nil {
			log.Fatal(err)
		}
		m := core.Model{N: n, K: ring, P: pool, Q: 2, ChannelOn: 0.5}
		got, err := m.TheoreticalKConnProb(k)
		if err != nil {
			log.Fatal(err)
		}
		t3.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%d", ring), fmt.Sprintf("%.4f", got))
	}
	if err := t3.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading: the dominant memory cost is channel unreliability, not robustness —")
	fmt.Println("doubling failures tolerated costs ~1-2 keys, but halving channel quality costs tens.")
}
