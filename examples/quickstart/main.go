// Quickstart: the five-minute tour of the library.
//
// It builds the paper's model G_{n,q}(n, K, P, p) for a realistic sensor
// deployment, asks the theory for the k-connectivity probability, checks it
// against a Monte Carlo estimate, and prints the design rule output.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/rng"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// A WSN with 1000 sensors. Each sensor stores 50 keys drawn from a pool
	// of 10000; two sensors can talk securely iff they share ≥ 2 keys AND
	// their wireless channel is up, which happens with probability 0.5
	// (lossy environment).
	m := core.Model{N: 1000, K: 50, P: 10000, Q: 2, ChannelOn: 0.5}
	if err := m.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("model:", m)

	// Exact finite-n link probabilities (eqs. (3)-(5) of the paper).
	s, err := m.KeyShareProbability()
	if err != nil {
		log.Fatal(err)
	}
	t, err := m.EdgeProbability()
	if err != nil {
		log.Fatal(err)
	}
	deg, err := m.ExpectedDegree()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P[two sensors share >= 2 keys]   s = %.5f\n", s)
	fmt.Printf("P[secure usable link]            t = %.5f\n", t)
	fmt.Printf("expected secure degree               %.2f\n", deg)

	// Theorem 1: asymptotically exact probability of k-connectivity.
	for k := 1; k <= 3; k++ {
		p, err := m.TheoreticalKConnProb(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("theory: P[%d-connected] = %.4f\n", k, p)
	}

	// Check the k = 1 prediction empirically (Figure 1's estimator).
	est, err := m.EstimateConnectivity(context.Background(), core.EstimateConfig{
		Trials: 200,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("empirical: P[connected] = %s\n", est)

	// Sample one concrete topology and inspect it.
	g, err := m.Sample(rng.New(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one sampled topology: %d nodes, %d secure links, min degree %d\n",
		g.N(), g.M(), g.MinDegree())

	// Design rules: how many keys must each sensor hold?
	kstar, err := core.ThresholdK(m.N, m.P, m.Q, m.ChannelOn)
	if err != nil {
		log.Fatal(err)
	}
	k99, err := core.DesignK(m.N, m.P, m.Q, m.ChannelOn, 2, 0.99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: connectivity threshold K* = %d (eq. (9))\n", kstar)
	fmt.Printf("design: smallest K with P[2-connected] >= 0.99: %d\n", k99)
}
