// Attack resilience: why q-composite beats Eschenauer–Gligor against
// small-scale node capture — the paper's Section I motivation, reproduced
// end to end on deployed networks.
//
// Three schemes (q = 1, 2, 3) are dimensioned to the same link probability
// (Chan et al.'s methodology: each q gets its own pool size), deployed with
// the same number of sensors, then attacked: an adversary captures sensors
// at random, learns their key rings, and eavesdrops every external link
// whose full shared-key set it knows. The example prints the compromised
// fraction at a small and a large capture scale, showing the crossover.
//
// Run with: go run ./examples/attack-resilience
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("attack-resilience: ")

	const (
		sensors   = 400
		ring      = 60
		linkProb  = 0.33 // all schemes dimensioned to this
		trials    = 20
		smallefts = 5   // small-scale attack: 5 captured sensors
		largeefts = 100 // large-scale attack: 100 captured sensors
	)

	fmt.Printf("Capture attack on %d sensors; schemes dimensioned to link probability %.2f\n\n",
		sensors, linkProb)

	table := experiment.NewTable(
		"scheme", "pool P", fmt.Sprintf("compromised @ %d captured", smallefts),
		fmt.Sprintf("compromised @ %d captured", largeefts), "analytic @ small", "analytic @ large")

	for q := 1; q <= 3; q++ {
		pool, err := theory.PoolSizeForKeyShareProb(ring, q, linkProb)
		if err != nil {
			log.Fatal(err)
		}
		scheme, err := keys.NewQComposite(pool, ring, q)
		if err != nil {
			log.Fatal(err)
		}
		small, err := attackAverage(scheme, sensors, smallefts, trials, uint64(q))
		if err != nil {
			log.Fatal(err)
		}
		large, err := attackAverage(scheme, sensors, largeefts, trials, uint64(q)+100)
		if err != nil {
			log.Fatal(err)
		}
		anaSmall, err := adversary.AnalyticCompromiseFraction(pool, ring, q, smallefts)
		if err != nil {
			log.Fatal(err)
		}
		anaLarge, err := adversary.AnalyticCompromiseFraction(pool, ring, q, largeefts)
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(
			scheme.Name(),
			fmt.Sprintf("%d", pool),
			fmt.Sprintf("%.4f", small),
			fmt.Sprintf("%.4f", large),
			fmt.Sprintf("%.4f", anaSmall),
			fmt.Sprintf("%.4f", anaLarge),
		)
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading: at 5 captures the 3-composite scheme leaks the least; at 100")
	fmt.Println("captures the ordering flips — exactly the trade-off the paper describes")
	fmt.Println("(stronger against small-scale attacks, weaker against large-scale ones).")
}

// attackAverage deploys `trials` networks and returns the mean compromised
// fraction of external links after capturing `captured` sensors.
func attackAverage(scheme keys.Scheme, sensors, captured, trials int, seed uint64) (float64, error) {
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		net, err := wsn.Deploy(wsn.Config{
			Sensors: sensors,
			Scheme:  scheme,
			Channel: channel.AlwaysOn{},
			Seed:    seed*1000 + uint64(trial),
		})
		if err != nil {
			return 0, err
		}
		res, err := adversary.CaptureRandom(net, rng.NewStream(seed, uint64(trial)), captured)
		if err != nil {
			return 0, err
		}
		sum += res.Fraction()
	}
	return sum / float64(trials), nil
}
