// Disk model: the paper's Section IX open question, probed empirically.
//
// The paper proves its zero–one law under the on/off channel model and
// conjectures that "a zero–one law similar to our result here is expected to
// hold" under the disk model (sensors on a plane, communication within a
// radius). This example deploys the same q-composite key scheme under both
// channel models — matched so each pair's channel probability is identical
// (torus disk: p = π·r²) — and sweeps the key ring size. If the conjecture
// is right, both curves should climb through the same threshold region, with
// the disk model lagging slightly (geometric channels are positively
// correlated, which hurts connectivity near the threshold).
//
// Run with: go run ./examples/disk-model
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("disk-model: ")

	const (
		sensors = 500
		pool    = 5000
		q       = 2
		radius  = 0.4 // π·r² ≈ 0.5: matches OnOff{P: 0.5}
		trials  = 60
	)
	pEquiv := math.Pi * radius * radius
	fmt.Printf("Disk model vs on/off channels at matched pair probability p = π·%.2f² = %.3f\n",
		radius, pEquiv)
	fmt.Printf("n=%d, P=%d, q=%d, %d deployments per point\n\n", sensors, pool, q, trials)

	disk := channel.Disk{Radius: radius, Torus: true}
	onoff := disk.EquivalentOnOff()

	var diskSeries, onoffSeries experiment.Series
	diskSeries.Name = "disk model (torus)"
	onoffSeries.Name = "on/off channels"
	table := experiment.NewTable("K", "P[conn] disk", "P[conn] on/off")

	for ring := 24; ring <= 44; ring += 2 {
		scheme, err := keys.NewQComposite(pool, ring, q)
		if err != nil {
			log.Fatal(err)
		}
		pDisk, err := connectivityRate(scheme, disk, sensors, trials, 1)
		if err != nil {
			log.Fatal(err)
		}
		pOnOff, err := connectivityRate(scheme, onoff, sensors, trials, 2)
		if err != nil {
			log.Fatal(err)
		}
		diskSeries.Add(float64(ring), pDisk)
		onoffSeries.Add(float64(ring), pOnOff)
		table.AddRow(
			fmt.Sprintf("%d", ring),
			fmt.Sprintf("%.3f", pDisk),
			fmt.Sprintf("%.3f", pOnOff),
		)
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	if err := experiment.RenderChart(os.Stdout, []experiment.Series{diskSeries, onoffSeries}, experiment.ChartOptions{
		Title:  "Section IX conjecture: disk vs on/off at matched pair probability",
		XLabel: "key ring size K",
		YLabel: "P[connected]",
		YMin:   0, YMax: 1,
		Width: 72, Height: 18,
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading: both models exhibit a sharp threshold in the same K region —")
	fmt.Println("evidence for the paper's conjecture. At these sizes the two curves are")
	fmt.Println("statistically indistinguishable; the models differ in higher-order structure")
	fmt.Println("(geometric channels are positively correlated), not in the threshold location.")
}

// connectivityRate deploys `trials` networks under the given channel model
// and returns the fraction whose secure topology is connected.
func connectivityRate(scheme keys.Scheme, ch channel.Model, sensors, trials int, seedBase uint64) (float64, error) {
	connected := 0
	for trial := 0; trial < trials; trial++ {
		net, err := wsn.Deploy(wsn.Config{
			Sensors: sensors,
			Scheme:  scheme,
			Channel: ch,
			Seed:    seedBase*1_000_000 + uint64(keys.MaxRingSize(scheme))*1000 + uint64(trial),
		})
		if err != nil {
			return 0, err
		}
		topo := net.FullSecureTopology()
		if graphalgo.IsConnected(topo) {
			connected++
		}
	}
	return float64(connected) / float64(trials), nil
}
