// Key revocation: operating the network after captures are detected.
//
// When a captured sensor is identified, the standard response (from
// Eschenauer–Gligor, inherited by q-composite) is to revoke its entire key
// ring network-wide. Revocation is a double-edged sword: it cuts the
// adversary out, but every revocation thins the surviving sensors'
// effective key rings — sliding the network left along the paper's
// Figure-1 connectivity curve until it disconnects.
//
// This example deploys a network dimensioned above the connectivity
// threshold, then alternates captures and revocations, tracking (a) the
// fraction of links the adversary can still read and (b) the network's own
// connectivity — the operational trade-off an operator navigates.
//
// Run with: go run ./examples/key-revocation
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("key-revocation: ")

	const (
		sensors = 400
		pool    = 4000
		ring    = 45 // comfortably above the connectivity threshold
		q       = 2
		batch   = 8 // sensors captured (and then revoked) per round
	)
	scheme, err := keys.NewQComposite(pool, ring, q)
	if err != nil {
		log.Fatal(err)
	}
	net, err := wsn.Deploy(wsn.Config{
		Sensors: sensors,
		Scheme:  scheme,
		Channel: channel.OnOff{P: 0.8},
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Deployed %d sensors (K=%d, P=%d, q=%d); adversary captures %d sensors per round.\n",
		sensors, ring, pool, q, batch)
	fmt.Println("Each round the operator revokes the captured rings network-wide.")
	fmt.Println()

	r := rng.New(99)
	table := experiment.NewTable(
		"round", "captured total", "revoked keys", "effective ring",
		"compromised before revoke", "compromised after revoke", "links", "connected")

	// Each round is a two-step attack campaign on the SAME network: the
	// adversary captures a fresh batch of alive sensors, then the operator
	// revokes exactly those rings. Knowledge from earlier rounds carries no
	// weight — every previously captured ring is already revoked network-wide,
	// so its keys secure no remaining link.
	oneRound := adversary.Timeline{
		{Kind: adversary.StepCapture, Count: batch},
		{Kind: adversary.StepRevoke, Count: batch},
	}
	capturedTotal := 0
	for round := 1; round <= 8; round++ {
		res, err := adversary.RunCampaign(net, r, oneRound)
		if err != nil {
			log.Fatal(err)
		}
		// Steps[0]: eavesdropping power before the operator reacts.
		// Steps[1]: after revocation links exclude the revoked keys, so
		// previously-compromised links were torn or re-keyed.
		capture, revoke := res.Steps[0], res.Steps[1]
		capturedTotal += capture.Acted

		imp, err := net.Impact()
		if err != nil {
			log.Fatal(err)
		}

		table.AddRow(
			fmt.Sprintf("%d", round),
			fmt.Sprintf("%d", capturedTotal),
			fmt.Sprintf("%d", imp.RevokedKeys),
			fmt.Sprintf("%.1f", imp.EffectiveRingMean),
			fmt.Sprintf("%.4f", capture.Fraction()),
			fmt.Sprintf("%.4f", revoke.Fraction()),
			fmt.Sprintf("%d", imp.SecureLinks),
			fmt.Sprintf("%v", imp.Connected),
		)
		if !imp.Connected {
			break
		}
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading: revocation keeps the compromised fraction pinned near zero, but")
	fmt.Println("each round shaves the effective key ring; once it slides below the paper's")
	fmt.Println("connectivity threshold the network partitions — revocation budgets should be")
	fmt.Println("set with Figure 1 (or designer/DesignK) in hand.")
}
