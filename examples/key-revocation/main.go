// Key revocation: operating the network after captures are detected.
//
// When a captured sensor is identified, the standard response (from
// Eschenauer–Gligor, inherited by q-composite) is to revoke its entire key
// ring network-wide. Revocation is a double-edged sword: it cuts the
// adversary out, but every revocation thins the surviving sensors'
// effective key rings — sliding the network left along the paper's
// Figure-1 connectivity curve until it disconnects.
//
// This example deploys a network dimensioned above the connectivity
// threshold, then alternates captures and revocations, tracking (a) the
// fraction of links the adversary can still read and (b) the network's own
// connectivity — the operational trade-off an operator navigates.
//
// Run with: go run ./examples/key-revocation
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("key-revocation: ")

	const (
		sensors = 400
		pool    = 4000
		ring    = 45 // comfortably above the connectivity threshold
		q       = 2
		batch   = 8 // sensors captured (and then revoked) per round
	)
	scheme, err := keys.NewQComposite(pool, ring, q)
	if err != nil {
		log.Fatal(err)
	}
	net, err := wsn.Deploy(wsn.Config{
		Sensors: sensors,
		Scheme:  scheme,
		Channel: channel.OnOff{P: 0.8},
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Deployed %d sensors (K=%d, P=%d, q=%d); adversary captures %d sensors per round.\n",
		sensors, ring, pool, q, batch)
	fmt.Println("Each round the operator revokes the captured rings network-wide.")
	fmt.Println()

	r := rng.New(99)
	table := experiment.NewTable(
		"round", "captured total", "revoked keys", "effective ring",
		"compromised before revoke", "compromised after revoke", "links", "connected")

	capturedSoFar := []int32{}
	for round := 1; round <= 8; round++ {
		// Adversary captures a fresh batch of alive sensors.
		var batchIDs []int32
		for len(batchIDs) < batch {
			id := int32(r.Intn(sensors))
			if !net.Alive(id) || contains(capturedSoFar, id) || contains(batchIDs, id) {
				continue
			}
			batchIDs = append(batchIDs, id)
		}
		capturedSoFar = append(capturedSoFar, batchIDs...)

		// Eavesdropping power before the operator reacts.
		before, err := adversary.Capture(net, capturedSoFar)
		if err != nil {
			log.Fatal(err)
		}

		// Operator response: revoke the captured rings.
		if _, err := net.RevokeNodeKeys(batchIDs...); err != nil {
			log.Fatal(err)
		}
		imp, err := net.Impact()
		if err != nil {
			log.Fatal(err)
		}

		// Eavesdropping power after revocation: links now exclude revoked
		// keys, so previously-compromised links were torn or re-keyed.
		after, err := adversary.Capture(net, capturedSoFar)
		if err != nil {
			log.Fatal(err)
		}

		table.AddRow(
			fmt.Sprintf("%d", round),
			fmt.Sprintf("%d", len(capturedSoFar)),
			fmt.Sprintf("%d", imp.RevokedKeys),
			fmt.Sprintf("%.1f", imp.EffectiveRingMean),
			fmt.Sprintf("%.4f", before.Fraction()),
			fmt.Sprintf("%.4f", after.Fraction()),
			fmt.Sprintf("%d", imp.SecureLinks),
			fmt.Sprintf("%v", imp.Connected),
		)
		if !imp.Connected {
			break
		}
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading: revocation keeps the compromised fraction pinned near zero, but")
	fmt.Println("each round shaves the effective key ring; once it slides below the paper's")
	fmt.Println("connectivity threshold the network partitions — revocation budgets should be")
	fmt.Println("set with Figure 1 (or designer/DesignK) in hand.")
}

func contains(ids []int32, id int32) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
