// Unreliable links: what link unreliability does to a fixed deployment —
// the phenomenon that distinguishes this paper from the full-visibility
// literature it extends.
//
// A fleet of sensors is flashed with a fixed key configuration (K keys
// each). The example then sweeps the channel-on probability p from harsh
// (0.2) to perfect (1.0) and reports, at each quality level, the theoretical
// and empirical probability that the network is connected and 2-connected —
// showing the connectivity cliff an operator would fall off when deploying
// hardware tuned for clean channels into a noisy site.
//
// Run with: go run ./examples/unreliable-links
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("unreliable-links: ")

	const (
		n    = 1000
		pool = 10000
		ring = 55 // chosen so the network is comfortably connected at p = 1
		q    = 2
	)

	fmt.Printf("Fixed hardware: n=%d, K=%d, P=%d, q=%d. Sweeping channel quality p.\n\n",
		n, ring, pool, q)

	table := experiment.NewTable(
		"p", "edge prob t", "theory P[conn]", "empirical P[conn]", "theory P[2-conn]", "empirical P[2-conn]")
	var thConn, empConn experiment.Series
	thConn.Name = "theory P[connected]"
	empConn.Name = "empirical P[connected]"

	ctx := context.Background()
	for _, p := range []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0} {
		m := core.Model{N: n, K: ring, P: pool, Q: q, ChannelOn: p}
		tProb, err := m.EdgeProbability()
		if err != nil {
			log.Fatal(err)
		}
		th1, err := m.TheoreticalKConnProb(1)
		if err != nil {
			log.Fatal(err)
		}
		th2, err := m.TheoreticalKConnProb(2)
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.EstimateConfig{Trials: 150, Seed: uint64(1000 * p)}
		e1, err := m.EstimateConnectivity(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		e2, err := m.EstimateKConnectivity(ctx, 2, cfg)
		if err != nil {
			log.Fatal(err)
		}
		thConn.Add(p, th1)
		empConn.Add(p, e1.Estimate())
		table.AddRow(
			fmt.Sprintf("%.1f", p),
			fmt.Sprintf("%.5f", tProb),
			fmt.Sprintf("%.3f", th1),
			fmt.Sprintf("%.3f", e1.Estimate()),
			fmt.Sprintf("%.3f", th2),
			fmt.Sprintf("%.3f", e2.Estimate()),
		)
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	if err := experiment.RenderChart(os.Stdout, []experiment.Series{empConn, thConn}, experiment.ChartOptions{
		Title:  "Connectivity vs channel quality (fixed K)",
		XLabel: "channel-on probability p",
		YLabel: "P[connected]",
		YMin:   0, YMax: 1,
		Width: 72, Height: 18,
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nReading: the same hardware that is reliably connected at p ≥ 0.6 is almost")
	fmt.Println("never connected at p = 0.3 — link unreliability must be budgeted into K")
	fmt.Println("up front (see examples/design-guidelines).")
}
