package main

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/secure-wsn/qcomposite/internal/sweepserve"
)

// runWith re-invokes run() with a fresh flag set (flags register inside
// run(), so each invocation needs its own default FlagSet) and stdout
// discarded.
func runWith(t *testing.T, args ...string) error {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
	os.Args = append([]string{"kstar"}, args...)
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()
	return run()
}

// TestServerModeMatchesLocal pins the thin-client contract: -server runs the
// validation sweep as a sweepd job with the same grid and seeds, so the
// rendered CSV — estimates included — is byte-identical to the local run.
func TestServerModeMatchesLocal(t *testing.T) {
	m := sweepserve.NewManager(sweepserve.Options{})
	srv := httptest.NewServer(sweepserve.NewServer(m))
	defer func() {
		srv.Close()
		m.Close()
	}()

	dir := t.TempDir()
	localCSV := filepath.Join(dir, "local.csv")
	remoteCSV := filepath.Join(dir, "remote.csv")
	args := []string{"-n", "80", "-pool", "400", "-q", "1,2", "-p", "1,0.5", "-trials", "12", "-seed", "5"}

	if err := runWith(t, append(args, "-csv", localCSV)...); err != nil {
		t.Fatalf("local run failed: %v", err)
	}
	if err := runWith(t, append(args, "-csv", remoteCSV, "-server", srv.URL)...); err != nil {
		t.Fatalf("server-mode run failed: %v", err)
	}

	local, err := os.ReadFile(localCSV)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := os.ReadFile(remoteCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, remote) {
		t.Errorf("server-mode CSV differs from local run\nlocal:\n%s\nremote:\n%s", local, remote)
	}

	// The sweep genuinely ran on the server: its store now holds the grid.
	if st := m.Store().Stats(); st.Points != 4 {
		t.Errorf("server store holds %d points after the remote run, want 4", st.Points)
	}
}
