package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the migrated tool end to end at a small scale: the
// (q, p) threshold grid, the empirical K* validation sweep (sharded), and
// the pivoted table CSV must work from the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "kstar.csv")
	os.Args = []string{"kstar",
		"-n", "80", "-pool", "400", "-q", "1,2", "-p", "1,0.5",
		"-trials", "12", "-workers", "2", "-pointworkers", "3",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	head := strings.SplitN(text, "\n", 2)[0]
	for _, col := range []string{"q", "p", "K* exact (5)", "K* asymptotic (Lemma 2)", "paper", "t(K*) exact", "P[connected] @K* (sim)"} {
		if !strings.Contains(head, col) {
			t.Errorf("csv header %q missing column %q", head, col)
		}
	}
	if lines := strings.Count(strings.TrimSpace(text), "\n"); lines != 4 {
		t.Errorf("csv has %d data rows, want 4 (2 q × 2 p)", lines)
	}
	// Off-paper parameters render the paper column as "-".
	if !strings.Contains(text, "-") {
		t.Error("csv missing '-' placeholder for unpublished paper values")
	}
}
