// Command kstar reproduces the paper's in-text K* table (experiment E2):
// the minimum key ring size satisfying the eq. (9) connectivity condition
// t(K*, P, q, p) > ln n / n, for each (q, p) curve of Figure 1 — and
// validates each threshold empirically by deploying networks AT K* and
// estimating P[connected]: t(K*) barely clears the threshold, so α ≈ 0 and
// the estimate should land near the Theorem 1 knee value
// exp(−e^{−α}) ≈ 0.5 — the design rule marks the transition, not comfort.
//
// Two threshold computations are printed side by side: the exact evaluation
// of the eq. (5) sum, and the Lemma 2 asymptotic (K²/P)^q/q! — the paper's
// published values (35, 41, 52, 60, 67, 78) track the asymptotic one (the
// q = 2 row exactly, the q = 3 row within +1); see EXPERIMENTS.md.
//
// The simulation runs through experiment.SweepProportion over the (q, p)
// grid — per-point parameter-derived seeds, trials on a reusable
// wsn.DeployerPool — and the table is assembled by the shared
// Measurement/PivotSweep presenter.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/sweepserve"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kstar:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 1000, "number of sensors")
		pool     = flag.Int("pool", 10000, "key pool size P")
		qList    = flag.String("q", "2,3", "comma-separated overlap requirements")
		pList    = flag.String("p", "1,0.5,0.2", "comma-separated channel-on probabilities")
		trials   = flag.Int("trials", 150, "deployments per (q, p) point validating K* empirically")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write table CSV to this path")
		server   = flag.String("server", "", "run the validation sweep on this sweepd server (e.g. http://127.0.0.1:8322) instead of locally; estimates are bit-identical")
	)
	flag.Parse()

	qs, err := parseInts(*qList)
	if err != nil {
		return fmt.Errorf("parse -q: %w", err)
	}
	ps, err := parseFloats(*pList)
	if err != nil {
		return fmt.Errorf("parse -p: %w", err)
	}

	paper := map[[2]string]float64{
		{"2", "1"}: 35, {"2", "0.5"}: 41, {"2", "0.2"}: 52,
		{"3", "1"}: 60, {"3", "0.5"}: 67, {"3", "0.2"}: 78,
	}
	thresholds := func(pt experiment.GridPoint) (exact, asym int, err error) {
		exact, err = core.ThresholdK(*n, *pool, pt.Q, pt.P)
		if err != nil {
			return 0, 0, fmt.Errorf("exact K*(q=%d, p=%g): %w", pt.Q, pt.P, err)
		}
		asym, err = core.ThresholdKAsymptotic(*n, *pool, pt.Q, pt.P)
		if err != nil {
			return 0, 0, fmt.Errorf("asymptotic K*(q=%d, p=%g): %w", pt.Q, pt.P, err)
		}
		return exact, asym, nil
	}

	fmt.Printf("K* thresholds per eq. (9): minimal K with t(K, P=%d, q, p) > ln(%d)/%d = %.6f\n",
		*pool, *n, *n, lnOverN(*n))
	fmt.Printf("empirical column: P[connected] over %d deployments AT the exact K*, seed %d\n\n",
		*trials, *seed)

	// Empirical validation sweep: deploy at the exact K* of each (q, p). With
	// -server the sweep runs as a sweepd job of kind "kstar" — same grid,
	// same parameter-derived seeds, same trial semantics, so the estimates
	// are bit-identical to the local run.
	grid := experiment.Grid{Qs: qs, Ps: ps}
	var results []experiment.ProportionResult
	if *server != "" {
		client := &sweepserve.Client{Base: *server}
		results, err = client.RunProportion(context.Background(), sweepserve.JobSpec{
			Kind:    sweepserve.KindKStar,
			Sensors: *n,
			Pool:    *pool,
			Trials:  *trials,
			Seed:    *seed,
			Grid:    sweepserve.GridSpec{Qs: qs, Ps: ps},
		})
	} else {
		results, err = experiment.SweepProportion(context.Background(), grid,
			experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed},
			func(pt experiment.GridPoint) (montecarlo.Trial, error) {
				exact, _, err := thresholds(pt)
				if err != nil {
					return nil, err
				}
				scheme, err := keys.NewQComposite(*pool, exact, pt.Q)
				if err != nil {
					return nil, err
				}
				dp, err := wsn.NewDeployerPool(wsn.Config{
					Sensors: *n,
					Scheme:  scheme,
					Channel: channel.OnOff{P: pt.P},
				})
				if err != nil {
					return nil, err
				}
				return func(trial int, r *rng.Rand) (bool, error) {
					d := dp.Get()
					defer dp.Put(d)
					net, err := d.DeployRand(r)
					if err != nil {
						return false, err
					}
					return net.IsConnected()
				}, nil
			})
	}
	if err != nil {
		return err
	}

	// One row per (q, p); every table column is a measurement curve.
	var ms []experiment.Measurement
	addCurve := func(pt experiment.GridPoint, curve string, y float64) {
		ms = append(ms, experiment.Measurement{Point: pt, Curve: curve, X: pt.P, Y: y, Lo: y, Hi: y})
	}
	for _, res := range results {
		pt := res.Point
		exact, asym, err := thresholds(pt)
		if err != nil {
			return err
		}
		tv, err := theory.EdgeProb(*pool, exact, pt.Q, pt.P)
		if err != nil {
			return err
		}
		pub, ok := paper[[2]string{fmt.Sprintf("%d", pt.Q), fmt.Sprintf("%g", pt.P)}]
		if !ok {
			pub = math.NaN()
		}
		addCurve(pt, "K* exact (5)", float64(exact))
		addCurve(pt, "K* asymptotic (Lemma 2)", float64(asym))
		addCurve(pt, "paper", pub)
		addCurve(pt, "t(K*) exact", tv)
		lo, hi := res.Value.WilsonInterval(1.96)
		ms = append(ms, experiment.Measurement{
			Point: pt, Curve: "P[connected] @K* (sim)",
			X: pt.P, Y: res.Value.Estimate(), Lo: lo, Hi: hi,
		})
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"q", "p"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", pt.Q), fmt.Sprintf("%g", pt.P)}
		},
		FormatCell: func(m experiment.Measurement) string {
			switch {
			case math.IsNaN(m.Y):
				return "-"
			case strings.HasPrefix(m.Curve, "K*") || m.Curve == "paper":
				return fmt.Sprintf("%d", int(m.Y))
			case m.Curve == "t(K*) exact":
				return fmt.Sprintf("%.6f", m.Y)
			}
			return fmt.Sprintf("%.3f", m.Y)
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\n(K* sits at the transition knee — t(K*) barely clears ln n / n, so α ≈ 0 and the")
	fmt.Println("simulated probability lands near the Theorem 1 value exp(−e^{−α}) ≈ 0.5, not yet 1.)")

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := presented.Table.RenderCSV(f); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}

func lnOverN(n int) float64 {
	return math.Log(float64(n)) / float64(n)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
