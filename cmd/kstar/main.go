// Command kstar reproduces the paper's in-text K* table (experiment E2):
// the minimum key ring size satisfying the eq. (9) connectivity condition
// t(K*, P, q, p) > ln n / n, for each (q, p) curve of Figure 1.
//
// Two computations are printed side by side: the exact evaluation of the
// eq. (5) sum, and the Lemma 2 asymptotic (K²/P)^q/q! — the paper's
// published values (35, 41, 52, 60, 67, 78) track the asymptotic one (the
// q = 2 row exactly, the q = 3 row within +1); see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/theory"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kstar:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 1000, "number of sensors")
		pool    = flag.Int("pool", 10000, "key pool size P")
		qList   = flag.String("q", "2,3", "comma-separated overlap requirements")
		pList   = flag.String("p", "1,0.5,0.2", "comma-separated channel-on probabilities")
		csvPath = flag.String("csv", "", "write table CSV to this path")
	)
	flag.Parse()

	qs, err := parseInts(*qList)
	if err != nil {
		return fmt.Errorf("parse -q: %w", err)
	}
	ps, err := parseFloats(*pList)
	if err != nil {
		return fmt.Errorf("parse -p: %w", err)
	}

	paper := map[[2]string]string{
		{"2", "1"}: "35", {"2", "0.5"}: "41", {"2", "0.2"}: "52",
		{"3", "1"}: "60", {"3", "0.5"}: "67", {"3", "0.2"}: "78",
	}

	fmt.Printf("K* thresholds per eq. (9): minimal K with t(K, P=%d, q, p) > ln(%d)/%d\n\n", *pool, *n, *n)
	table := experiment.NewTable("q", "p", "K* exact (5)", "K* asymptotic (Lemma 2)", "paper", "t(K*) exact", "ln n / n")
	thr := fmt.Sprintf("%.6f", lnOverN(*n))
	for _, q := range qs {
		for _, p := range ps {
			exact, err := core.ThresholdK(*n, *pool, q, p)
			if err != nil {
				return fmt.Errorf("exact K*(q=%d, p=%g): %w", q, p, err)
			}
			asym, err := core.ThresholdKAsymptotic(*n, *pool, q, p)
			if err != nil {
				return fmt.Errorf("asymptotic K*(q=%d, p=%g): %w", q, p, err)
			}
			tv, err := theory.EdgeProb(*pool, exact, q, p)
			if err != nil {
				return err
			}
			pub := paper[[2]string{fmt.Sprintf("%d", q), fmt.Sprintf("%g", p)}]
			if pub == "" {
				pub = "-"
			}
			table.AddRow(
				fmt.Sprintf("%d", q),
				fmt.Sprintf("%g", p),
				fmt.Sprintf("%d", exact),
				fmt.Sprintf("%d", asym),
				pub,
				fmt.Sprintf("%.6f", tv),
				thr,
			)
		}
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := table.RenderCSV(f); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}

func lnOverN(n int) float64 {
	return math.Log(float64(n)) / float64(n)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
