package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the zero–one law tool end to end on a short n
// schedule with point sharding enabled: the ±α branches, per-n ring
// dimensioning, and the series CSV must work from the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "zeroone.csv")
	os.Args = []string{"zeroone",
		"-q", "1", "-p", "0.9", "-k", "1", "-c", "1.5", "-poolmult", "5",
		"-nlist", "40,80",
		"-trials", "8", "-workers", "2", "-pointworkers", "2",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.TrimSpace(string(data))) == 0 {
		t.Error("series csv is empty")
	}
}
