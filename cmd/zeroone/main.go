// Command zeroone demonstrates the zero–one law of Theorem 1, eqs. (8b) and
// (8c) (experiment E6): growing n along a schedule with the pool scaling
// linearly (P = 10·n, the paper's practicality condition), the ring size is
// chosen at each n so that the deviation α_n ≈ ±c·ln ln n → ±∞. The
// empirical probability of k-connectivity must march to 1 on the plus
// branch and to 0 on the minus branch.
//
// The sweep runs through experiment.CrossSweep over the (n × branch) grid
// with per-point deterministic seeding; each trial deploys through a
// reusable wsn.DeployerPool (zero steady-state allocation on the trial
// loop). With -k=1 the sweep auto-selects the streaming edge path (union-find
// over streamed channel edges, no CSR, early exit once connected); k ≥ 2
// deploys full networks for the exact k-connectivity decision.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zeroone:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		q        = flag.Int("q", 2, "required key overlap")
		pOn      = flag.Float64("p", 0.5, "channel-on probability")
		k        = flag.Int("k", 2, "connectivity level k")
		c        = flag.Float64("c", 2.0, "deviation multiplier: alpha = ±c·ln ln n")
		poolMult = flag.Int("poolmult", 10, "pool size P = poolmult·n")
		nList    = flag.String("nlist", "200,400,800,1600,3200", "comma-separated n schedule")
		trials   = flag.Int("trials", 200, "samples per point")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write series CSV to this path")
	)
	flag.Parse()

	var ns []int
	for _, part := range strings.Split(*nList, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return fmt.Errorf("parse -nlist %q: %w", part, err)
		}
		if v < 3 {
			return fmt.Errorf("n must be ≥ 3, got %d", v)
		}
		ns = append(ns, v)
	}

	fmt.Printf("Zero–one law (8b)/(8c): k=%d, q=%d, p=%g, P=%d·n, alpha_n = ±%.1f·ln ln n\n",
		*k, *q, *pOn, *poolMult, *c)
	fmt.Printf("%d trials/point\n\n", *trials)

	// Per-point design: the ring size realizing the targeted ±alpha at this
	// n. Derived from the point parameters only, so the sweep stays
	// reproducible point by point.
	type design struct {
		pool, ring      int
		alphaTarget     float64
		realized, limit float64
	}
	designFor := func(n int, sign float64) (design, error) {
		d := design{pool: *poolMult * n}
		d.alphaTarget = sign * *c * math.Log(math.Log(float64(n)))
		tTarget, err := theory.EdgeProbForAlpha(n, d.alphaTarget, *k)
		if err != nil {
			return d, err
		}
		d.ring, err = theory.RingSizeForEdgeProb(d.pool, *q, *pOn, tTarget)
		if err != nil {
			return d, fmt.Errorf("n=%d sign=%+g: %w", n, sign, err)
		}
		if d.ring < *q {
			d.ring = *q
		}
		m := core.Model{N: n, K: d.ring, P: d.pool, Q: *q, ChannelOn: *pOn}
		if d.realized, err = m.Alpha(*k); err != nil {
			return d, err
		}
		if d.limit, err = m.TheoreticalKConnProb(*k); err != nil {
			return d, err
		}
		return d, nil
	}

	// Grid: Ks carries the n schedule, Xs the branch sign.
	grid := experiment.Grid{Ks: ns, Qs: []int{*q}, Ps: []float64{*pOn}, Xs: []float64{1, -1}}
	ctx := context.Background()
	start := time.Now()
	results, err := experiment.CrossSweep(ctx, grid,
		experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed},
		experiment.CrossSpec{
			K: *k,
			Build: func(pt experiment.GridPoint) (wsn.Config, error) {
				d, err := designFor(pt.K, pt.X)
				if err != nil {
					return wsn.Config{}, err
				}
				scheme, err := keys.NewQComposite(d.pool, d.ring, pt.Q)
				if err != nil {
					return wsn.Config{}, err
				}
				return wsn.Config{
					Sensors: pt.K,
					Scheme:  scheme,
					Channel: channel.OnOff{P: pt.P},
				}, nil
			},
		})
	if err != nil {
		return err
	}

	curveOf := func(pt experiment.GridPoint) string {
		if pt.X > 0 {
			return "alpha_n -> +inf (law: P -> 1)"
		}
		return "alpha_n -> -inf (law: P -> 0)"
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"n", "P"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", pt.K), fmt.Sprintf("%d", *poolMult*pt.K)}
		},
		FormatCell: func(m experiment.Measurement) string {
			d, err := designFor(m.Point.K, m.Point.X)
			if err != nil {
				return fmt.Sprintf("%.3f", m.Y)
			}
			return fmt.Sprintf("%.3f (K=%d, alpha %+0.2f, limit %.3f)", m.Y, d.ring, d.realized, d.limit)
		},
	}, experiment.ProportionMeasurements(results, 0,
		func(pt experiment.GridPoint) float64 { return float64(pt.K) },
		curveOf,
	))
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, presented.Series, experiment.ChartOptions{
		Title:  fmt.Sprintf("Zero–one law for %d-connectivity (markers: empirical P)", *k),
		XLabel: "number of sensors n",
		YLabel: "P[k-connected]",
		YMin:   0, YMax: 1,
		Width: 76, Height: 20,
	}); err != nil {
		return err
	}

	if *csvPath != "" {
		if err := presented.SaveSeriesCSV(*csvPath); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}
