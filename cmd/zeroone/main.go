// Command zeroone demonstrates the zero–one law of Theorem 1, eqs. (8b) and
// (8c) (experiment E6): growing n along a schedule with the pool scaling
// linearly (P = 10·n, the paper's practicality condition), the ring size is
// chosen at each n so that the deviation α_n ≈ ±c·ln ln n → ±∞. The
// empirical probability of k-connectivity must march to 1 on the plus
// branch and to 0 on the minus branch.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/theory"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "zeroone:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		q        = flag.Int("q", 2, "required key overlap")
		pOn      = flag.Float64("p", 0.5, "channel-on probability")
		k        = flag.Int("k", 2, "connectivity level k")
		c        = flag.Float64("c", 2.0, "deviation multiplier: alpha = ±c·ln ln n")
		poolMult = flag.Int("poolmult", 10, "pool size P = poolmult·n")
		nList    = flag.String("nlist", "200,400,800,1600,3200", "comma-separated n schedule")
		trials   = flag.Int("trials", 200, "samples per point")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write series CSV to this path")
	)
	flag.Parse()

	var ns []int
	for _, part := range splitCSV(*nList) {
		var v int
		if _, err := fmt.Sscanf(part, "%d", &v); err != nil {
			return fmt.Errorf("parse -nlist %q: %w", part, err)
		}
		if v < 3 {
			return fmt.Errorf("n must be ≥ 3, got %d", v)
		}
		ns = append(ns, v)
	}

	fmt.Printf("Zero–one law (8b)/(8c): k=%d, q=%d, p=%g, P=%d·n, alpha_n = ±%.1f·ln ln n\n",
		*k, *q, *pOn, *poolMult, *c)
	fmt.Printf("%d trials/point\n\n", *trials)

	one := experiment.Series{Name: "alpha_n -> +inf (law: P -> 1)"}
	zero := experiment.Series{Name: "alpha_n -> -inf (law: P -> 0)"}
	table := experiment.NewTable("n", "P", "branch", "target alpha", "K", "realized alpha", "empirical P", "limit")
	ctx := context.Background()
	start := time.Now()
	for _, n := range ns {
		pool := *poolMult * n
		for _, sign := range []float64{1, -1} {
			alphaTarget := sign * *c * math.Log(math.Log(float64(n)))
			tTarget, err := theory.EdgeProbForAlpha(n, alphaTarget, *k)
			if err != nil {
				return err
			}
			ring, err := theory.RingSizeForEdgeProb(pool, *q, *pOn, tTarget)
			if err != nil {
				return fmt.Errorf("n=%d sign=%+g: %w", n, sign, err)
			}
			if ring < *q {
				ring = *q
			}
			m := core.Model{N: n, K: ring, P: pool, Q: *q, ChannelOn: *pOn}
			realized, err := m.Alpha(*k)
			if err != nil {
				return err
			}
			limit, err := m.TheoreticalKConnProb(*k)
			if err != nil {
				return err
			}
			est, err := m.EstimateKConnectivity(ctx, *k, core.EstimateConfig{
				Trials:  *trials,
				Workers: *workers,
				Seed:    *seed + uint64(n)*7 + uint64(sign+2),
			})
			if err != nil {
				return fmt.Errorf("n=%d: %w", n, err)
			}
			branch := "+"
			if sign < 0 {
				branch = "-"
			}
			if sign > 0 {
				one.Add(float64(n), est.Estimate())
			} else {
				zero.Add(float64(n), est.Estimate())
			}
			table.AddRow(
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", pool),
				branch,
				fmt.Sprintf("%+.2f", alphaTarget),
				fmt.Sprintf("%d", ring),
				fmt.Sprintf("%+.2f", realized),
				fmt.Sprintf("%.3f", est.Estimate()),
				fmt.Sprintf("%.3f", limit),
			)
		}
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, []experiment.Series{one, zero}, experiment.ChartOptions{
		Title:  fmt.Sprintf("Zero–one law for %d-connectivity (markers: empirical P)", *k),
		XLabel: "number of sensors n",
		YLabel: "P[k-connected]",
		YMin:   0, YMax: 1,
		Width: 76, Height: 20,
	}); err != nil {
		return err
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := experiment.WriteSeriesCSV(f, []experiment.Series{one, zero}); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}

func splitCSV(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		if r != ' ' {
			cur += string(r)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
