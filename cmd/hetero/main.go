// Command hetero reproduces the zero–one connectivity transition of the
// heterogeneous key predistribution scheme under on/off channels (Eletreby
// and Yağan, arXiv:1604.00460; heterogeneous channels per arXiv:1908.09826):
// sensors independently join the small-ring class with probability μ (ring
// K₁) or the large-ring class otherwise (ring K₂), all drawing from one
// P-key pool. Sweeping K₁ drives the minimal-class mean edge probability
// λ_min through the (ln n)/n threshold, and the empirical probability of
// connectivity must transition from 0 to 1 tracking the exp(−e^{−β}) limit,
// where λ_min = (ln n + β)/n.
//
// The sweep runs over a (K₁ × μ) grid through experiment.Grid with
// per-point deterministic seeding; each trial deploys a full class-aware
// network (keys.Heterogeneous + channel.HeterOnOff) through a reusable
// wsn.DeployerPool. The per-class on/off matrix defaults to uniform p; set
// -p12/-p22 to exercise the heterogeneous channel model.
//
// With -kconn k ≥ 1 the tool switches to the heterogeneous k-connectivity
// study of arXiv:1604.00460 §IV instead: the mixing probability is fixed
// (-mu) and the Grid's Xs axis carries the connectivity levels 1…k through
// experiment.SweepKConnectivity (the cross-sweep path), with the level-k
// limit exp(−e^{−β_k}/(k−1)!) as the theory overlay per curve.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/cmdutil"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hetero:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 500, "number of sensors")
		pool     = flag.Int("pool", 10000, "key pool size P")
		q        = flag.Int("q", 1, "required key overlap (1 = heterogeneous Eschenauer–Gligor)")
		k1Min    = flag.Int("k1min", 1, "smallest class-1 ring size K1")
		k1Max    = flag.Int("k1max", 25, "largest class-1 ring size K1")
		k1Step   = flag.Int("k1step", 2, "class-1 ring size step")
		k2       = flag.Int("k2", 120, "class-2 (large) ring size K2")
		muList   = flag.String("mus", "0.2,0.5,0.8", "comma-separated class-1 mixing probabilities μ")
		kConn    = flag.Int("kconn", 0, "run the k-connectivity study for k = 1..kconn at fixed -mu (0 = zero–one connectivity mode)")
		mu       = flag.Float64("mu", 0.5, "class-1 mixing probability of the -kconn study")
		p11      = flag.Float64("p", 0.5, "channel-on probability for class-1↔class-1 pairs (and default for the rest)")
		p12      = flag.Float64("p12", -1, "channel-on probability for class-1↔class-2 pairs (-1 = same as -p)")
		p22      = flag.Float64("p22", -1, "channel-on probability for class-2↔class-2 pairs (-1 = same as -p)")
		trials   = flag.Int("trials", 200, "samples per point")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write series CSV to this path")
	)
	journal := cmdutil.RegisterJournal()
	flag.Parse()
	if err := journal.Open(); err != nil {
		return err
	}
	defer journal.Close()

	if *p12 < 0 {
		*p12 = *p11
	}
	if *p22 < 0 {
		*p22 = *p11
	}
	pOn := [][]float64{{*p11, *p12}, {*p12, *p22}}
	ch := channel.HeterOnOff{P: pOn}

	var mus []float64
	for _, part := range strings.Split(*muList, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		mu, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return fmt.Errorf("parse -mus %q: %w", part, err)
		}
		if mu <= 0 || mu >= 1 {
			return fmt.Errorf("μ=%v must lie strictly in (0,1): two classes need positive mass each", mu)
		}
		mus = append(mus, mu)
	}
	if len(mus) == 0 {
		return fmt.Errorf("no mixing probabilities given")
	}
	if *k1Step < 1 {
		return fmt.Errorf("-k1step %d must be ≥ 1", *k1Step)
	}
	var k1s []int
	for k := *k1Min; k <= *k1Max; k += *k1Step {
		k1s = append(k1s, k)
	}

	classesFor := func(mu float64, k1 int) []keys.Class {
		return []keys.Class{{Mu: mu, RingSize: k1}, {Mu: 1 - mu, RingSize: *k2}}
	}

	if *kConn > 0 {
		if *mu <= 0 || *mu >= 1 {
			return fmt.Errorf("-mu %v must lie strictly in (0,1): two classes need positive mass each", *mu)
		}
		return runKConn(kconnStudy{
			n: *n, pool: *pool, q: *q, k2: *k2, kMax: *kConn, mu: *mu,
			k1s: k1s, ch: ch, pOn: pOn, classesFor: classesFor,
			trials: *trials, workers: *workers, pointWorkers: *pWorkers,
			seed: *seed, csvPath: *csvPath, journal: journal,
		})
	}

	fmt.Printf("Heterogeneous zero–one law (Eletreby–Yağan): P[connected] vs class-1 ring size K1\n")
	fmt.Printf("n=%d, P=%d, q=%d, K2=%d, channel p=[%g %g; %g %g], %d trials/point, seed %d\n\n",
		*n, *pool, *q, *k2, *p11, *p12, *p12, *p22, *trials, *seed)

	grid := experiment.Grid{Ks: k1s, Qs: []int{*q}, Ps: []float64{*p11}, Xs: mus}
	cfg := journal.Apply(
		experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed},
		fmt.Sprintf("hetero zero-one n=%d pool=%d k2=%d p=[%g %g %g]", *n, *pool, *k2, *p11, *p12, *p22))
	ctx, stop := cmdutil.SignalContext()
	defer stop()
	start := time.Now()
	results, err := experiment.SweepProportion(ctx, grid, cfg,
		func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			scheme, err := keys.NewHeterogeneous(*pool, pt.Q, classesFor(pt.X, pt.K))
			if err != nil {
				return nil, err
			}
			dp, err := wsn.NewDeployerPool(wsn.Config{
				Sensors: *n,
				Scheme:  scheme,
				Channel: ch,
			})
			if err != nil {
				return nil, err
			}
			return func(trial int, r *rng.Rand) (bool, error) {
				d := dp.Get()
				defer dp.Put(d)
				net, err := d.DeployRand(r)
				if err != nil {
					return false, err
				}
				return net.IsConnected()
			}, nil
		})
	if err != nil {
		return journal.Hint(err)
	}

	// Empirical curves from the sweep plus the exp(−e^{−β}) limit of
	// Theorem 1 as theory-only curves on the same x axis.
	ms := experiment.ProportionMeasurements(results, 1.96,
		func(pt experiment.GridPoint) float64 { return float64(pt.K) },
		func(pt experiment.GridPoint) string { return fmt.Sprintf("μ=%g", pt.X) },
	)
	for _, res := range results {
		pt := res.Point
		lambdaMin, err := theory.HeteroMinLambda(*pool, pt.Q, classesFor(pt.X, pt.K), pOn)
		if err != nil {
			return err
		}
		beta, err := theory.HeteroBeta(*n, lambdaMin)
		if err != nil {
			return err
		}
		limit := theory.HeteroConnProbLimit(beta)
		ms = append(ms, experiment.Measurement{
			Point: pt, Curve: fmt.Sprintf("limit μ=%g", pt.X),
			X: float64(pt.K), Y: limit, Lo: limit, Hi: limit,
		})
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"K1"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", pt.K)}
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, presented.Series, experiment.ChartOptions{
		Title: fmt.Sprintf("Heterogeneous zero–one transition (n=%d, P=%d, K2=%d, %d trials)",
			*n, *pool, *k2, *trials),
		XLabel: "class-1 ring size K1",
		YLabel: "P[connected]",
		YMin:   0, YMax: 1,
		Width: 76, Height: 22,
	}); err != nil {
		return err
	}

	fmt.Println("\nconnectivity-threshold K1* (smallest K1 with λ_min > ln n / n):")
	for _, mu := range mus {
		// The K1 in classesFor is a placeholder: HeteroThresholdRingSize
		// searches class 0's ring size and overwrites it.
		kStar, err := theory.HeteroThresholdRingSize(*n, *pool, *q, classesFor(mu, *k1Min), pOn, 0)
		if err != nil {
			return err
		}
		fmt.Printf("  μ=%-5g K1* = %d\n", mu, kStar)
	}
	fmt.Println("\nReading: the transition sharpens around K1*, where the minimal (small-ring)")
	fmt.Println("class crosses the (ln n)/n mean-edge-probability threshold — the class-1")
	fmt.Println("bottleneck of Eletreby–Yağan Theorem 1. Larger μ puts more sensors in the")
	fmt.Println("small class, but the threshold is driven by λ_min, so the curves cluster.")

	if *csvPath != "" {
		if err := presented.SaveSeriesCSV(*csvPath); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}

// kconnStudy carries the resolved parameters of the -kconn mode.
type kconnStudy struct {
	n, pool, q, k2, kMax  int
	mu                    float64
	k1s                   []int
	ch                    channel.HeterOnOff
	pOn                   [][]float64
	classesFor            func(mu float64, k1 int) []keys.Class
	trials                int
	workers, pointWorkers int
	seed                  uint64
	csvPath               string
	journal               *cmdutil.Journal
}

// runKConn is the heterogeneous k-connectivity study (arXiv:1604.00460 §IV):
// P[k-connected] vs the class-1 ring size K1 for k = 1…kMax at fixed μ,
// swept through the cross-sweep path (the Xs axis carries the connectivity
// levels) with the level-k Poisson limit as theory overlay.
func runKConn(s kconnStudy) error {
	fmt.Printf("Heterogeneous k-connectivity (Eletreby–Yağan §IV): P[k-connected] vs class-1 ring size K1\n")
	fmt.Printf("n=%d, P=%d, q=%d, K2=%d, μ=%g, k = 1..%d, %d trials/point, seed %d\n\n",
		s.n, s.pool, s.q, s.k2, s.mu, s.kMax, s.trials, s.seed)

	grid := experiment.Grid{Ks: s.k1s, Qs: []int{s.q}, Xs: experiment.KLevels(s.kMax)}
	cfg := s.journal.Apply(
		experiment.SweepConfig{Trials: s.trials, Workers: s.workers, PointWorkers: s.pointWorkers, Seed: s.seed},
		fmt.Sprintf("hetero kconn n=%d pool=%d k2=%d mu=%g", s.n, s.pool, s.k2, s.mu))
	ctx, stop := cmdutil.SignalContext()
	defer stop()
	start := time.Now()
	results, err := experiment.SweepKConnectivity(ctx, grid, cfg,
		func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewHeterogeneous(s.pool, pt.Q, s.classesFor(s.mu, pt.K))
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: s.n, Scheme: scheme, Channel: s.ch}, nil
		})
	if err != nil {
		return s.journal.Hint(err)
	}

	ms := experiment.KConnMeasurements(results, 1.96)
	for _, pt := range grid.Points() {
		k, err := experiment.KOf(pt)
		if err != nil {
			return err
		}
		limit, err := theory.HeteroKConnProbability(s.n, s.pool, pt.Q, s.classesFor(s.mu, pt.K), s.pOn, k)
		if err != nil {
			return err
		}
		ms = append(ms, experiment.Measurement{
			Point: pt, Curve: fmt.Sprintf("limit k=%d", k),
			X: float64(pt.K), Y: limit, Lo: limit, Hi: limit,
		})
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"K1"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", pt.K)}
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, presented.Series, experiment.ChartOptions{
		Title: fmt.Sprintf("Heterogeneous k-connectivity (n=%d, P=%d, K2=%d, μ=%g, %d trials)",
			s.n, s.pool, s.k2, s.mu, s.trials),
		XLabel: "class-1 ring size K1",
		YLabel: "P[k-connected]",
		YMin:   0, YMax: 1,
		Width: 76, Height: 22,
	}); err != nil {
		return err
	}

	fmt.Println("\nReading: each level's transition tracks the exp(−e^{−β_k}/(k−1)!) limit with")
	fmt.Println("β_k = n·λ_min − ln n − (k−1)·ln ln n — higher k shifts the threshold right by")
	fmt.Println("ln ln n per level, all still driven by the minimal (small-ring) class.")

	if s.csvPath != "" {
		if err := presented.SaveSeriesCSV(s.csvPath); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", s.csvPath)
	}
	return nil
}
