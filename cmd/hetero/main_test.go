package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// resetFlags gives run() a fresh global FlagSet: each invocation registers
// its flags anew, so tests driving the tool twice must clear the previous
// registration.
func resetFlags() {
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
}

func silenceStdout(t *testing.T) {
	t.Helper()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	stdout := os.Stdout
	os.Stdout = null
	t.Cleanup(func() {
		os.Stdout = stdout
		null.Close()
	})
}

// TestRunSmoke drives the zero–one mode end to end on a small (K1 × μ)
// grid with a non-uniform channel matrix: heterogeneous scheme + channel,
// theory-limit overlay, and series CSV from the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "hetero.csv")
	os.Args = []string{"hetero",
		"-n", "50", "-pool", "300", "-q", "1", "-k2", "40",
		"-k1min", "2", "-k1max", "10", "-k1step", "8",
		"-mus", "0.3,0.7", "-p", "0.8", "-p12", "0.6",
		"-trials", "10", "-workers", "2", "-pointworkers", "2",
		"-csv", csv,
	}
	silenceStdout(t)
	resetFlags()
	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, series := range []string{"μ=0.3", "μ=0.7", "limit μ=0.3", "limit μ=0.7"} {
		if !strings.Contains(text, series) {
			t.Errorf("series csv missing curve %q", series)
		}
	}
}

// TestRunKConnSmoke drives the -kconn cross-sweep mode: the (K1 × k) grid
// through SweepKConnectivity with the level-k limit overlays.
func TestRunKConnSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "hetero_kconn.csv")
	os.Args = []string{"hetero",
		"-n", "50", "-pool", "300", "-q", "1", "-k2", "40",
		"-k1min", "2", "-k1max", "10", "-k1step", "8",
		"-kconn", "2", "-mu", "0.4", "-p", "0.8",
		"-trials", "10", "-workers", "2", "-pointworkers", "3",
		"-csv", csv,
	}
	silenceStdout(t)
	resetFlags()
	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, series := range []string{"empirical k=1", "empirical k=2", "limit k=1", "limit k=2"} {
		if !strings.Contains(text, series) {
			t.Errorf("series csv missing curve %q", series)
		}
	}
	// An out-of-range mixing probability fails fast in kconn mode.
	os.Args = []string{"hetero", "-kconn", "1", "-mu", "1.5", "-trials", "1"}
	resetFlags()
	if err := run(); err == nil || !strings.Contains(err.Error(), "-mu") {
		t.Errorf("mu=1.5: err = %v, want a -mu validation error", err)
	}
}

// TestCheckpointResumeRoundTrip re-runs the zero-one sweep against one
// -checkpoint journal; the resumed run recomputes nothing and reproduces the
// CSV bit for bit.
func TestCheckpointResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "hetero.journal")
	csv1 := filepath.Join(dir, "run1.csv")
	csv2 := filepath.Join(dir, "run2.csv")
	args := []string{"hetero",
		"-n", "50", "-pool", "300", "-k2", "40",
		"-k1min", "4", "-k1max", "8", "-k1step", "4",
		"-mus", "0.3,0.7", "-p", "0.8",
		"-trials", "8", "-workers", "2", "-pointworkers", "2",
		"-checkpoint", journal,
	}
	silenceStdout(t)
	resetFlags()
	os.Args = append(args, "-csv", csv1)
	if err := run(); err != nil {
		t.Fatalf("checkpointed run failed: %v", err)
	}
	first, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	resetFlags()
	os.Args = append(args, "-csv", csv2)
	if err := run(); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	second, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	appended := second[len(first):]
	if n := bytes.Count(appended, []byte(`"point"`)); n != 0 {
		t.Errorf("resume recomputed %d points, want 0", n)
	}
	a, _ := os.ReadFile(csv1)
	b, _ := os.ReadFile(csv2)
	if !bytes.Equal(a, b) {
		t.Error("resumed run's CSV differs from the original run's")
	}
}
