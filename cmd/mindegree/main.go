// Command mindegree validates Lemma 8 (experiment E4): the probability that
// the minimum node degree of G_{n,q} is at least k converges to the same
// limit exp(−e^{−α}/(k−1)!) as k-connectivity, and at finite n it upper
// bounds the k-connectivity probability (minimum degree ≥ k is necessary
// for k-connectivity — the upper-bound half of the paper's proof strategy).
//
// Two modes share the flag surface and presentation:
//
//   - "stream" (default) runs experiment.SweepMinDegree: every trial streams
//     its channel draw through the ring intersector into the degree
//     accumulator — no CSR graph at any n — so the min-degree curve scales to
//     n = 10^6 and beyond, limited by time rather than memory.
//   - "csr" keeps the legacy joint sweep: each trial deploys one full network
//     and measures BOTH min degree and k-connectivity on that topology, so
//     the sample-by-sample ordering (k-connected ⇒ min degree ≥ k) is checked
//     structurally, not just by seed pairing.
//
// Both modes seed per point deterministically, and at equal flags the stream
// mode's min-degree curve is bit-identical to the csr mode's (the streaming
// accumulator is pinned against FullSecureTopology().MinDegree()).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/cmdutil"
	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mindegree:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 1000, "number of sensors")
		pool     = flag.Int("pool", 10000, "key pool size P")
		q        = flag.Int("q", 2, "required key overlap")
		pOn      = flag.Float64("p", 0.5, "channel-on probability")
		k        = flag.Int("k", 2, "connectivity / degree level k")
		kMin     = flag.Int("kmin", 38, "smallest ring size K")
		kEnd     = flag.Int("kmax", 58, "largest ring size K")
		kStep    = flag.Int("kstep", 2, "ring size step")
		trials   = flag.Int("trials", 300, "samples per point")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		mode     = flag.String("mode", "stream", `"stream" (graph-free min-degree sweep) or "csr" (joint min-degree + k-connectivity cross-check)`)
		csvPath  = flag.String("csv", "", "write series CSV to this path")
	)
	journal := cmdutil.RegisterJournal()
	flag.Parse()
	if err := journal.Open(); err != nil {
		return err
	}
	defer journal.Close()

	var ks []int
	for ring := *kMin; ring <= *kEnd; ring += *kStep {
		ks = append(ks, ring)
	}

	grid := experiment.Grid{Ks: ks, Qs: []int{*q}, Ps: []float64{*pOn}}
	cfg := journal.Apply(
		experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed},
		fmt.Sprintf("mindegree %s n=%d pool=%d k=%d", *mode, *n, *pool, *k))
	ctx, stop := cmdutil.SignalContext()
	defer stop()
	xOf := func(pt experiment.GridPoint) float64 { return float64(pt.K) }
	start := time.Now()

	var ms []experiment.Measurement
	switch *mode {
	case "stream":
		fmt.Printf("Lemma 8 validation (streaming): P[min degree ≥ %d] vs limit\n", *k)
		fmt.Printf("n=%d, P=%d, q=%d, p=%g, %d trials/point (graph-free: degree accumulator, no CSR at any n)\n\n",
			*n, *pool, *q, *pOn, *trials)
		results, err := experiment.SweepMinDegree(ctx, grid, cfg, *k,
			func(pt experiment.GridPoint) (wsn.Config, error) {
				scheme, err := keys.NewQComposite(*pool, pt.K, pt.Q)
				if err != nil {
					return wsn.Config{}, err
				}
				return wsn.Config{Sensors: *n, Scheme: scheme, Channel: channel.OnOff{P: pt.P}}, nil
			})
		if err != nil {
			return journal.Hint(err)
		}
		ms = experiment.ProportionMeasurements(results, 1.96, xOf,
			func(experiment.GridPoint) string { return fmt.Sprintf("P[min degree >= %d]", *k) })
	case "csr":
		fmt.Printf("Lemma 8 validation: P[min degree ≥ %d] vs P[%d-connected] vs limit\n", *k, *k)
		fmt.Printf("n=%d, P=%d, q=%d, p=%g, %d trials/point (both statistics from one deployment per trial)\n\n",
			*n, *pool, *q, *pOn, *trials)
		results, err := experiment.SweepMeanVec(ctx, grid, cfg, 2,
			func(pt experiment.GridPoint) (montecarlo.SampleVec, error) {
				scheme, err := keys.NewQComposite(*pool, pt.K, pt.Q)
				if err != nil {
					return nil, err
				}
				dp, err := wsn.NewDeployerPool(wsn.Config{
					Sensors: *n,
					Scheme:  scheme,
					Channel: channel.OnOff{P: pt.P},
				})
				if err != nil {
					return nil, err
				}
				return func(trial int, r *rng.Rand) ([]float64, error) {
					d := dp.Get()
					defer dp.Put(d)
					net, err := d.DeployRand(r)
					if err != nil {
						return nil, err
					}
					out := []float64{0, 0}
					if net.FullSecureTopology().MinDegree() >= *k {
						out[0] = 1
					}
					kc, err := net.IsKConnected(*k)
					if err != nil {
						return nil, err
					}
					if kc {
						out[1] = 1
						if out[0] == 0 {
							return nil, fmt.Errorf("K=%d trial %d: k-connected topology with min degree < k", pt.K, trial)
						}
					}
					return out, nil
				}, nil
			})
		if err != nil {
			return journal.Hint(err)
		}
		ms = experiment.MeanVecMeasurements(results, 0, 1.96, xOf,
			fmt.Sprintf("P[min degree >= %d]", *k))
		ms = append(ms, experiment.MeanVecMeasurements(results, 1, 1.96, xOf,
			fmt.Sprintf("P[%d-connected]", *k))...)
	default:
		return fmt.Errorf("unknown -mode %q (want \"stream\" or \"csr\")", *mode)
	}

	// Limit overlay: one row per K, the shared eq. (7)/(76) limit.
	for _, pt := range grid.Points() {
		m := core.Model{N: *n, K: pt.K, P: *pool, Q: pt.Q, ChannelOn: pt.P}
		want, err := m.TheoreticalMinDegProb(*k)
		if err != nil {
			return err
		}
		ms = append(ms, experiment.Measurement{
			Point: pt,
			Curve: "limit (7)=(76)",
			X:     float64(pt.K),
			Y:     want, Lo: want, Hi: want,
		})
	}
	alphaOf := func(ring int) (float64, error) {
		m := core.Model{N: *n, K: ring, P: *pool, Q: *q, ChannelOn: *pOn}
		return m.Alpha(*k)
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"K", "alpha"},
		RowCells: func(pt experiment.GridPoint) []string {
			alpha, err := alphaOf(pt.K)
			if err != nil {
				return []string{fmt.Sprintf("%d", pt.K), "?"}
			}
			return []string{fmt.Sprintf("%d", pt.K), fmt.Sprintf("%+.3f", alpha)}
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n", time.Since(start).Round(time.Millisecond))
	if *mode == "csr" {
		fmt.Printf("(every trial measures both properties on one deployed topology, so\n")
		fmt.Printf(" P[k-connected] ≤ P[min degree ≥ k] holds sample by sample by construction)\n\n")
	} else {
		fmt.Printf("(streaming mode: each trial feeds the channel draw straight into the degree\n")
		fmt.Printf(" accumulator; run -mode=csr for the joint k-connectivity cross-check)\n\n")
	}

	if err := experiment.RenderChart(os.Stdout, presented.Series, experiment.ChartOptions{
		Title:  fmt.Sprintf("Lemma 8: min degree vs %d-connectivity (n=%d)", *k, *n),
		XLabel: "key ring size K",
		YLabel: "probability",
		YMin:   0, YMax: 1,
		Width: 76, Height: 22,
	}); err != nil {
		return err
	}

	if *csvPath != "" {
		if err := presented.SaveSeriesCSV(*csvPath); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}
