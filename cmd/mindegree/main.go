// Command mindegree validates Lemma 8 (experiment E4): the probability that
// the minimum node degree of G_{n,q} is at least k converges to the same
// limit exp(−e^{−α}/(k−1)!) as k-connectivity, and at finite n it upper
// bounds the k-connectivity probability (minimum degree ≥ k is necessary
// for k-connectivity — the upper-bound half of the paper's proof strategy).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mindegree:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 1000, "number of sensors")
		pool    = flag.Int("pool", 10000, "key pool size P")
		q       = flag.Int("q", 2, "required key overlap")
		pOn     = flag.Float64("p", 0.5, "channel-on probability")
		k       = flag.Int("k", 2, "connectivity / degree level k")
		kMin    = flag.Int("kmin", 38, "smallest ring size K")
		kEnd    = flag.Int("kmax", 58, "largest ring size K")
		kStep   = flag.Int("kstep", 2, "ring size step")
		trials  = flag.Int("trials", 300, "samples per point")
		workers = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		csvPath = flag.String("csv", "", "write series CSV to this path")
	)
	flag.Parse()

	fmt.Printf("Lemma 8 validation: P[min degree ≥ %d] vs P[%d-connected] vs limit\n", *k, *k)
	fmt.Printf("n=%d, P=%d, q=%d, p=%g, %d trials/point (same seeds for both estimates)\n\n",
		*n, *pool, *q, *pOn, *trials)

	md := experiment.Series{Name: fmt.Sprintf("P[min degree >= %d]", *k)}
	kc := experiment.Series{Name: fmt.Sprintf("P[%d-connected]", *k)}
	th := experiment.Series{Name: "limit (7)=(76)"}
	table := experiment.NewTable("K", "alpha", "min degree", "k-conn", "limit", "violations")
	ctx := context.Background()
	start := time.Now()
	for ring := *kMin; ring <= *kEnd; ring += *kStep {
		m := core.Model{N: *n, K: ring, P: *pool, Q: *q, ChannelOn: *pOn}
		alpha, err := m.Alpha(*k)
		if err != nil {
			return err
		}
		want, err := m.TheoreticalMinDegProb(*k)
		if err != nil {
			return err
		}
		cfg := core.EstimateConfig{Trials: *trials, Workers: *workers, Seed: *seed + uint64(ring)}
		mdEst, err := m.EstimateMinDegreeAtLeast(ctx, *k, cfg)
		if err != nil {
			return fmt.Errorf("K=%d min degree: %w", ring, err)
		}
		kcEst, err := m.EstimateKConnectivity(ctx, *k, cfg)
		if err != nil {
			return fmt.Errorf("K=%d k-conn: %w", ring, err)
		}
		// With identical seeds, every k-connected sample has min degree ≥ k,
		// so the success counts must be ordered sample-by-sample.
		violations := 0
		if kcEst.Successes > mdEst.Successes {
			violations = kcEst.Successes - mdEst.Successes
		}
		md.Add(float64(ring), mdEst.Estimate())
		kc.Add(float64(ring), kcEst.Estimate())
		th.Add(float64(ring), want)
		table.AddRow(
			fmt.Sprintf("%d", ring),
			fmt.Sprintf("%+.3f", alpha),
			fmt.Sprintf("%.3f", mdEst.Estimate()),
			fmt.Sprintf("%.3f", kcEst.Estimate()),
			fmt.Sprintf("%.3f", want),
			fmt.Sprintf("%d", violations),
		)
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, []experiment.Series{md, kc, th}, experiment.ChartOptions{
		Title:  fmt.Sprintf("Lemma 8: min degree vs %d-connectivity (n=%d)", *k, *n),
		XLabel: "key ring size K",
		YLabel: "probability",
		YMin:   0, YMax: 1,
		Width: 76, Height: 22,
	}); err != nil {
		return err
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := experiment.WriteSeriesCSV(f, []experiment.Series{md, kc, th}); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}
