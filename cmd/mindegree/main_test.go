package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the Lemma 8 tool end to end on a small grid with
// point sharding enabled: the paired min-degree/k-connectivity sweep, the
// limit overlay, and the series CSV must work from the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "mindegree.csv")
	os.Args = []string{"mindegree",
		"-n", "60", "-pool", "300", "-q", "1", "-p", "0.9", "-k", "2",
		"-kmin", "8", "-kmax", "12", "-kstep", "4",
		"-trials", "10", "-workers", "2", "-pointworkers", "3",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "limit (7)=(76)") {
		t.Error("series csv missing the limit overlay curve")
	}
}
