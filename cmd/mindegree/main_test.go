package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runWithArgs resets the flag surface, points stdout at /dev/null, and
// drives run() with the given argv tail.
func runWithArgs(t *testing.T, args ...string) error {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet("mindegree", flag.ExitOnError)
	os.Args = append([]string{"mindegree"}, args...)
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()
	return run()
}

// TestRunSmoke drives the Lemma 8 tool end to end on a small grid with
// point sharding enabled, in both modes: the streaming (graph-free)
// min-degree sweep and the legacy csr joint min-degree/k-connectivity
// sweep. In each mode the limit overlay and the series CSV must work from
// the flag surface down.
func TestRunSmoke(t *testing.T) {
	for _, mode := range []string{"stream", "csr"} {
		t.Run(mode, func(t *testing.T) {
			csv := filepath.Join(t.TempDir(), "mindegree.csv")
			err := runWithArgs(t,
				"-mode", mode,
				"-n", "60", "-pool", "300", "-q", "1", "-p", "0.9", "-k", "2",
				"-kmin", "8", "-kmax", "12", "-kstep", "4",
				"-trials", "10", "-workers", "2", "-pointworkers", "3",
				"-csv", csv,
			)
			if err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(csv)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(data), "limit (7)=(76)") {
				t.Error("series csv missing the limit overlay curve")
			}
			if !strings.Contains(string(data), "P[min degree >= 2]") {
				t.Error("series csv missing the min-degree curve")
			}
			if strings.Contains(string(data), "P[2-connected]") != (mode == "csr") {
				t.Errorf("mode %s: k-connectivity curve presence wrong", mode)
			}
		})
	}
}

// TestRunRejectsUnknownMode covers the mode validation.
func TestRunRejectsUnknownMode(t *testing.T) {
	err := runWithArgs(t, "-mode", "bogus", "-trials", "1")
	if err == nil || !strings.Contains(err.Error(), "unknown -mode") {
		t.Fatalf("err = %v, want unknown -mode", err)
	}
}

// TestCheckpointResumeRoundTrip re-runs the streaming sweep against one
// -checkpoint journal; the resumed run recomputes nothing and produces a
// bit-identical CSV.
func TestCheckpointResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "mindegree.journal")
	csv1 := filepath.Join(dir, "run1.csv")
	csv2 := filepath.Join(dir, "run2.csv")
	args := []string{
		"-n", "60", "-pool", "300", "-q", "1", "-k", "1",
		"-kmin", "10", "-kmax", "14", "-kstep", "2",
		"-trials", "8", "-workers", "2", "-pointworkers", "2",
		"-checkpoint", journal,
	}
	if err := runWithArgs(t, append(args, "-csv", csv1)...); err != nil {
		t.Fatalf("checkpointed run failed: %v", err)
	}
	first, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := runWithArgs(t, append(args, "-csv", csv2)...); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	second, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	// The resumed run appends exactly one header and zero point records.
	appended := second[len(first):]
	if n := bytes.Count(appended, []byte(`"point"`)); n != 0 {
		t.Errorf("resume recomputed %d points, want 0", n)
	}
	if n := bytes.Count(appended, []byte(`"header"`)); n != 1 {
		t.Errorf("resume appended %d headers, want 1", n)
	}
	a, _ := os.ReadFile(csv1)
	b, _ := os.ReadFile(csv2)
	if !bytes.Equal(a, b) {
		t.Error("resumed run's CSV differs from the original run's")
	}
}
