package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/secure-wsn/qcomposite/internal/sweepserve"
)

// freePort reserves an ephemeral port and releases it for the daemon. The
// tiny reuse window is fine for a test on localhost.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches run() with the given flags as a real daemon would
// start, returning its exit-error channel.
func startDaemon(t *testing.T, args ...string) <-chan error {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
	os.Args = append([]string{"sweepd"}, args...)
	errc := make(chan error, 1)
	go func() { errc <- run() }()
	return errc
}

func waitHealthy(t *testing.T, client *sweepserve.Client) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := client.Stats(ctx); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSigtermDrainAndRestart is the daemon's lifecycle smoke test: serve a
// job, take a SIGTERM, exit through the graceful drain path, then restart on
// the same journal and serve the identical job entirely from the restored
// store — the full crash-recovery story at the process level.
func TestSigtermDrainAndRestart(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	journal := filepath.Join(t.TempDir(), "sweepd.journal")
	spec := sweepserve.JobSpec{
		Kind:    sweepserve.KindConnectivity,
		Sensors: 30,
		Pool:    150,
		Trials:  10,
		Seed:    3,
		Grid:    sweepserve.GridSpec{Ks: []int{6, 9}, Qs: []int{1}, Ps: []float64{0.4, 0.8}},
	}
	ctx := context.Background()

	// Life 1: run a job to completion, then SIGTERM.
	addr := freePort(t)
	errc := startDaemon(t, "-addr", addr, "-journal", journal, "-drain", "5s")
	client := &sweepserve.Client{Base: "http://" + addr, Poll: 5 * time.Millisecond}
	waitHealthy(t, client)

	ack, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Wait(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != sweepserve.StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	firstResult, err := client.Result(ctx, ack.ID)
	if err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exited with error after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain within 15s of SIGTERM")
	}

	// Life 2: same journal. The identical job must resolve fully from the
	// restored store — zero fresh computation — and return the same numbers.
	addr2 := freePort(t)
	errc2 := startDaemon(t, "-addr", addr2, "-journal", journal)
	client2 := &sweepserve.Client{Base: "http://" + addr2, Poll: 5 * time.Millisecond}
	waitHealthy(t, client2)

	stats, err := client2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4; stats.Store.Restored != want {
		t.Errorf("restart restored %d points, want %d", stats.Store.Restored, want)
	}
	ack2, err := client2.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := client2.Wait(ctx, ack2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != sweepserve.StateDone || st2.Progress.Cached != 4 {
		t.Fatalf("restarted job should resolve all 4 points from the journal: %+v (%s)", st2, st2.Error)
	}
	secondResult, err := client2.Result(ctx, ack2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", secondResult) != fmt.Sprintf("%+v", firstResult) {
		t.Errorf("restarted result differs:\n got %+v\nwant %+v", secondResult, firstResult)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc2:
		if err != nil {
			t.Fatalf("second daemon exited with error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("second daemon did not drain")
	}
}
