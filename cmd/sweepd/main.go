// Command sweepd is the sweep-as-a-service daemon: a long-running HTTP/JSON
// job server over the experiment engine. Clients POST sweep specs to
// /v1/jobs (connectivity sweeps, cross sweeps, k-connectivity, min-degree,
// design-rule validations, K* validations, attack campaigns), poll
// /v1/jobs/{id}, stream per-point progress from /v1/jobs/{id}/events (SSE),
// and fetch results from /v1/jobs/{id}/result as JSON or CSV.
//
// The -journal file is the server's result store: every completed grid point
// appends one checkpoint-journal line, identical points are deduplicated
// across jobs (seeds derive from point parameters, never from scheduling),
// and a restarted server resumes from the file bit-identical to one that
// never died. SIGINT/SIGTERM drains gracefully: running sweeps cancel,
// points already computed are journaled, in-flight HTTP requests get the
// -drain window to finish.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/cmdutil"
	"github.com/secure-wsn/qcomposite/internal/sweepserve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8322", "listen address")
		journal  = flag.String("journal", "", "result-store journal file (empty: in-memory only, nothing survives restarts)")
		jobs     = flag.Int("jobworkers", 1, "concurrently executing jobs (1 maximizes cross-job cache reuse)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards per job (0 = sequential points; results identical either way)")
		workers  = flag.Int("workers", 0, "trial workers per point (0 = all CPUs)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown window for in-flight requests")
	)
	flag.Parse()

	store := sweepserve.NewStore()
	if *journal != "" {
		var err error
		store, err = sweepserve.OpenStore(*journal)
		if err != nil {
			return err
		}
		defer store.Close()
		if st := store.Stats(); st.Restored > 0 {
			fmt.Printf("restored %d completed points from %s\n", st.Restored, *journal)
		}
	}

	manager := sweepserve.NewManager(sweepserve.Options{
		Store:        store,
		JobWorkers:   *jobs,
		PointWorkers: *pWorkers,
		TrialWorkers: *workers,
	})

	srv := &http.Server{Addr: *addr, Handler: sweepserve.NewServer(manager)}
	// The drain sequence on SIGINT/SIGTERM: stop the manager first (running
	// sweeps cancel, still-queued jobs fail with "shutting down" — every job
	// reaches a terminal state, so SSE streams emit their final event and
	// close), which lets Shutdown's in-flight-request wait complete within
	// the window instead of timing out on long-poll clients.
	srv.RegisterOnShutdown(func() { go manager.Close() })

	ctx, stop := cmdutil.SignalContext()
	defer stop()

	fmt.Printf("sweepd listening on http://%s\n", *addr)
	if err := cmdutil.Serve(ctx, srv, *drain); err != nil {
		manager.Close()
		return err
	}
	manager.Close()
	fmt.Println("sweepd drained cleanly; journaled points will resume on restart")
	return nil
}
