// Command crossq runs the on/off-vs-disk cross sweep (the source paper's
// Section IX comparison): the empirical probability that the q-composite
// secure WSN is k-connected as a function of the disk-channel radius r, for
// each overlap requirement q, measured three ways at every (q, r) point —
//
//   - under the disk model itself (sensors uniform on the unit torus,
//     channels within distance r);
//   - under the on/off model matched to the disk marginal p = π·r² (the
//     paper's comparison device: same pair probability, independent edges);
//   - the Theorem 1 prediction at that matched edge probability.
//
// The gap between the first two curves is the geometric dependence the
// on/off abstraction ignores; the phase surface shows where it matters.
//
// The radius axis runs through experiment.CrossSweep with the Grid's Xs
// axis bound to the disk radius (BindDiskRadius), the matched on/off sweep
// through a free-axis CrossSpec whose build derives p = π·r² from the same
// axis — both on per-point wsn.DeployerPools with parameter-derived seeds,
// so results are bit-identical for every -pointworkers value.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/cmdutil"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crossq:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 500, "number of sensors")
		pool     = flag.Int("pool", 10000, "key pool size P")
		ring     = flag.Int("ring", 80, "key ring size K (shared by all q curves)")
		qList    = flag.String("q", "1,2", "comma-separated overlap requirements")
		rMin     = flag.Float64("rmin", 0.02, "smallest disk radius")
		rMax     = flag.Float64("rmax", 0.3, "largest disk radius")
		rStep    = flag.Float64("rstep", 0.04, "disk radius step")
		kConn    = flag.Int("k", 1, "connectivity level tested at every point")
		trials   = flag.Int("trials", 200, "samples per point")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write series CSV to this path")
	)
	journal := cmdutil.RegisterJournal()
	flag.Parse()
	if err := journal.Open(); err != nil {
		return err
	}
	defer journal.Close()

	qs, err := parseInts(*qList)
	if err != nil {
		return fmt.Errorf("parse -q: %w", err)
	}
	if *rStep <= 0 {
		return fmt.Errorf("-rstep %v must be positive", *rStep)
	}
	var radii []float64
	for r := *rMin; r <= *rMax+1e-12; r += *rStep {
		radii = append(radii, r)
	}
	if len(radii) == 0 {
		return fmt.Errorf("empty radius range [%v, %v]", *rMin, *rMax)
	}

	fmt.Printf("On/off vs disk cross sweep: P[%d-connected] vs disk radius r\n", *kConn)
	fmt.Printf("n=%d, P=%d, K=%d, q ∈ %v, torus distances, %d trials/point, seed %d\n\n",
		*n, *pool, *ring, qs, *trials, *seed)

	grid := experiment.Grid{Ks: []int{*ring}, Qs: qs, Xs: radii}
	cfg := experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed}
	ctx, stop := cmdutil.SignalContext()
	defer stop()
	start := time.Now()

	// Sweep 1: the disk model itself, radius driven by the Xs axis binding.
	// Each sweep journals under its own label: one -checkpoint file holds
	// both sweeps' sections and each resumes only its own.
	diskCfg := journal.Apply(cfg, fmt.Sprintf("crossq disk n=%d pool=%d k=%d", *n, *pool, *kConn))
	disk, err := experiment.CrossSweep(ctx, grid, diskCfg, experiment.CrossSpec{
		Bindings: []experiment.XBinding{experiment.BindDiskRadius},
		Torus:    true,
		K:        *kConn,
		Build: func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(*pool, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: *n, Scheme: scheme}, nil
		},
	})
	if err != nil {
		return journal.Hint(err)
	}

	// Sweep 2: the matched on/off model — same grid and seeds, the channel
	// derived from the radius axis as p = π·r² inside the build (a free-axis
	// cross spec: nothing else reads Xs).
	onoffCfg := journal.Apply(cfg, fmt.Sprintf("crossq onoff n=%d pool=%d k=%d", *n, *pool, *kConn))
	onoff, err := experiment.CrossSweep(ctx, grid, onoffCfg, experiment.CrossSpec{
		K: *kConn,
		Build: func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(*pool, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			p, err := theory.DiskOnProb(pt.X)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: *n, Scheme: scheme, Channel: channel.OnOff{P: p}}, nil
		},
	})
	if err != nil {
		return journal.Hint(err)
	}

	radiusOf := func(pt experiment.GridPoint) float64 { return pt.X }
	ms := experiment.ProportionMeasurements(disk, 1.96, radiusOf,
		func(pt experiment.GridPoint) string { return fmt.Sprintf("disk q=%d", pt.Q) })
	ms = append(ms, experiment.ProportionMeasurements(onoff, 1.96, radiusOf,
		func(pt experiment.GridPoint) string { return fmt.Sprintf("on/off q=%d", pt.Q) })...)
	for _, pt := range grid.Points() {
		want, err := theory.DiskKConnProbability(*n, *pool, pt.K, pt.Q, pt.X, *kConn)
		if err != nil {
			return err
		}
		ms = append(ms, experiment.Measurement{
			Point: pt, Curve: fmt.Sprintf("theory q=%d", pt.Q),
			X: pt.X, Y: want, Lo: want, Hi: want,
		})
	}

	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"radius"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%.3f", pt.X)}
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, presented.Series, experiment.ChartOptions{
		Title: fmt.Sprintf("Disk vs matched on/off channels (n=%d, P=%d, K=%d, k=%d, %d trials)",
			*n, *pool, *ring, *kConn, *trials),
		XLabel: "disk radius r",
		YLabel: fmt.Sprintf("P[%d-connected]", *kConn),
		YMin:   0, YMax: 1,
		Width: 76, Height: 22,
	}); err != nil {
		return err
	}

	fmt.Println("\nthreshold radius r* per q (smallest r whose torus marginal p satisfies p·s(K,P,q) > ln n / n):")
	target := math.Log(float64(*n)) / float64(*n)
	for _, q := range qs {
		s, err := theory.KeyShareProb(*pool, *ring, q)
		if err != nil {
			return err
		}
		// The matched on/off probability p* = target/s must be a probability;
		// past p* = 1 even the full torus cannot reach the threshold.
		if s <= 0 || target/s > 1 {
			fmt.Printf("  q=%d: no radius reaches the threshold at K=%d (needs p > %.3f)\n",
				q, *ring, target/s)
			continue
		}
		rStar, err := theory.DiskRadiusForOnProb(target / s)
		if err != nil {
			return err
		}
		fmt.Printf("  q=%d: r* = %.4f (matched on/off p* = %.4f)\n", q, rStar, target/s)
	}
	fmt.Println("\nReading: both curves transition near r*, but the disk curve is flatter —")
	fmt.Println("geometric edge dependence (nearby sensors share neighbourhoods) spreads the")
	fmt.Println("phase transition that independent on/off channels sharpen.")

	if *csvPath != "" {
		if err := presented.SaveSeriesCSV(*csvPath); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
