package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCrossq resets the flag surface and drives run() with the given argv
// tail, stdout discarded.
func runCrossq(t *testing.T, args ...string) error {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet("crossq", flag.ExitOnError)
	os.Args = append([]string{"crossq"}, args...)
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()
	return run()
}

// TestRunSmoke drives the cross sweep end to end on a small grid with point
// sharding enabled: the radius-bound disk sweep, the matched on/off sweep,
// the theory overlay, and the series CSV must work from the flag surface
// down.
func TestRunSmoke(t *testing.T) {
	flag.CommandLine = flag.NewFlagSet("crossq", flag.ExitOnError)
	csv := filepath.Join(t.TempDir(), "crossq.csv")
	os.Args = []string{"crossq",
		"-n", "40", "-pool", "200", "-ring", "30", "-q", "1,2", "-k", "1",
		"-rmin", "0.1", "-rmax", "0.5", "-rstep", "0.4",
		"-trials", "10", "-workers", "2", "-pointworkers", "3",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, series := range []string{"disk q=1", "disk q=2", "on/off q=1", "on/off q=2", "theory q=1", "theory q=2"} {
		if !strings.Contains(text, series) {
			t.Errorf("series csv missing curve %q", series)
		}
	}
}

// TestCheckpointResumeRoundTrip exercises the multi-section journal: crossq
// runs TWO sweeps (disk and on/off) against one -checkpoint file, each under
// its own label. The resumed run must restore both sweeps from their own
// sections, recompute nothing, and reproduce the CSV bit for bit.
func TestCheckpointResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "crossq.journal")
	csv1 := filepath.Join(dir, "run1.csv")
	csv2 := filepath.Join(dir, "run2.csv")
	args := []string{
		"-n", "40", "-pool", "200", "-ring", "30", "-q", "1", "-k", "1",
		"-rmin", "0.1", "-rmax", "0.5", "-rstep", "0.4",
		"-trials", "6", "-workers", "2", "-pointworkers", "2",
		"-checkpoint", journal,
	}
	if err := runCrossq(t, append(args, "-csv", csv1)...); err != nil {
		t.Fatalf("checkpointed run failed: %v", err)
	}
	first, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(first, []byte(`"header"`)); n != 2 {
		t.Fatalf("run 1 wrote %d headers, want 2 (disk + on/off sections)", n)
	}
	if err := runCrossq(t, append(args, "-csv", csv2)...); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	second, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	appended := second[len(first):]
	if n := bytes.Count(appended, []byte(`"point"`)); n != 0 {
		t.Errorf("resume recomputed %d points, want 0", n)
	}
	if n := bytes.Count(appended, []byte(`"header"`)); n != 2 {
		t.Errorf("resume appended %d headers, want 2", n)
	}
	a, _ := os.ReadFile(csv1)
	b, _ := os.ReadFile(csv2)
	if !bytes.Equal(a, b) {
		t.Error("resumed run's CSV differs from the original run's")
	}
}
