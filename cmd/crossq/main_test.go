package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the cross sweep end to end on a small grid with point
// sharding enabled: the radius-bound disk sweep, the matched on/off sweep,
// the theory overlay, and the series CSV must work from the flag surface
// down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "crossq.csv")
	os.Args = []string{"crossq",
		"-n", "40", "-pool", "200", "-ring", "30", "-q", "1,2", "-k", "1",
		"-rmin", "0.1", "-rmax", "0.5", "-rstep", "0.4",
		"-trials", "10", "-workers", "2", "-pointworkers", "3",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, series := range []string{"disk q=1", "disk q=2", "on/off q=1", "on/off q=2", "theory q=1", "theory q=2"} {
		if !strings.Contains(text, series) {
			t.Errorf("series csv missing curve %q", series)
		}
	}
}
