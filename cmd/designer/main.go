// Command designer is the WSN dimensioning tool built on the paper's
// "precise design guideline": given a deployment size n, pool size P,
// overlap requirement q, channel quality p, resilience level k, and a target
// probability, it prints
//
//   - the smallest key ring size K achieving the target k-connectivity
//     probability under Theorem 1 (memory is the scarce resource on
//     sensors, so the minimum K matters);
//   - the eq. (9) connectivity threshold K* for reference;
//   - the resulting edge probability, expected degree, and α_n.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "designer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n      = flag.Int("n", 1000, "number of sensors")
		pool   = flag.Int("pool", 10000, "key pool size P")
		q      = flag.Int("q", 2, "required key overlap")
		pOn    = flag.Float64("p", 0.5, "channel-on probability")
		kMax   = flag.Int("kmax", 3, "design for k = 1..kmax")
		target = flag.Float64("target", 0.99, "target k-connectivity probability")
	)
	flag.Parse()

	if *target <= 0 || *target >= 1 {
		return fmt.Errorf("target must be in (0,1), got %v", *target)
	}

	fmt.Printf("Design guideline for n=%d sensors, P=%d, q=%d, p=%g, target P[k-conn] ≥ %g\n\n",
		*n, *pool, *q, *pOn, *target)

	table := experiment.NewTable(
		"k", "min ring K", "achieved P[k-conn]", "alpha", "edge prob t", "expected degree")
	for k := 1; k <= *kMax; k++ {
		ring, err := core.DesignK(*n, *pool, *q, *pOn, k, *target)
		if err != nil {
			return fmt.Errorf("design k=%d: %w", k, err)
		}
		m := core.Model{N: *n, K: ring, P: *pool, Q: *q, ChannelOn: *pOn}
		achieved, err := m.TheoreticalKConnProb(k)
		if err != nil {
			return err
		}
		alpha, err := m.Alpha(k)
		if err != nil {
			return err
		}
		tProb, err := m.EdgeProbability()
		if err != nil {
			return err
		}
		deg, err := m.ExpectedDegree()
		if err != nil {
			return err
		}
		table.AddRow(
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", ring),
			fmt.Sprintf("%.4f", achieved),
			fmt.Sprintf("%+.3f", alpha),
			fmt.Sprintf("%.6f", tProb),
			fmt.Sprintf("%.2f", deg),
		)
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}

	exact, err := core.ThresholdK(*n, *pool, *q, *pOn)
	if err != nil {
		return err
	}
	asym, err := core.ThresholdKAsymptotic(*n, *pool, *q, *pOn)
	if err != nil {
		return err
	}
	fmt.Printf("\neq. (9) connectivity threshold K*: exact %d, asymptotic %d\n", exact, asym)
	fmt.Println("(K* puts the network just above the connectivity scaling; the design table targets a probability.)")
	return nil
}
