// Command designer is the WSN dimensioning tool built on the paper's
// "precise design guideline": given a deployment size n, pool size P,
// overlap requirement q, channel quality p, resilience level k, and a target
// probability, it prints
//
//   - the smallest key ring size K achieving the target k-connectivity
//     probability under Theorem 1 (memory is the scarce resource on
//     sensors, so the minimum K matters);
//   - the empirical P[k-connected] of networks deployed AT that ring size —
//     the design rule validated by simulation, not just by the asymptotic;
//   - the eq. (9) connectivity threshold K* for reference;
//   - the resulting edge probability, expected degree, and α_n.
//
// The validation runs through experiment.SweepKConnectivity (the cross-sweep
// path: the Grid's Xs axis carries the levels k = 1…kmax and each point
// deploys at its own designed ring size through a reusable
// wsn.DeployerPool), and the table is assembled by the shared
// Measurement/PivotSweep presenter.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/sweepserve"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "designer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 1000, "number of sensors")
		pool     = flag.Int("pool", 10000, "key pool size P")
		q        = flag.Int("q", 2, "required key overlap")
		pOn      = flag.Float64("p", 0.5, "channel-on probability")
		kMax     = flag.Int("kmax", 3, "design for k = 1..kmax")
		target   = flag.Float64("target", 0.99, "target k-connectivity probability")
		trials   = flag.Int("trials", 150, "deployments per level validating the design empirically")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write table CSV to this path")
		server   = flag.String("server", "", "run the validation sweep on this sweepd server (e.g. http://127.0.0.1:8322) instead of locally; estimates are bit-identical")
	)
	flag.Parse()

	if *target <= 0 || *target >= 1 {
		return fmt.Errorf("target must be in (0,1), got %v", *target)
	}
	if *kMax < 1 {
		return fmt.Errorf("-kmax %d must be ≥ 1", *kMax)
	}

	fmt.Printf("Design guideline for n=%d sensors, P=%d, q=%d, p=%g, target P[k-conn] ≥ %g\n",
		*n, *pool, *q, *pOn, *target)
	fmt.Printf("empirical column: P[k-connected] over %d deployments at the designed K, seed %d\n\n",
		*trials, *seed)

	ringFor := func(k int) (int, error) {
		ring, err := core.DesignK(*n, *pool, *q, *pOn, k, *target)
		if err != nil {
			return 0, fmt.Errorf("design k=%d: %w", k, err)
		}
		return ring, nil
	}

	// Empirical validation: the Xs axis carries the levels; every level
	// deploys at its own designed ring size. With -server the sweep runs as a
	// sweepd job of kind "design" — same grid, same parameter-derived seeds,
	// same trial semantics, so the estimates are bit-identical to the local
	// run (and the server caches the points for the next caller).
	grid := experiment.Grid{Qs: []int{*q}, Ps: []float64{*pOn}, Xs: experiment.KLevels(*kMax)}
	var results []experiment.ProportionResult
	var err error
	if *server != "" {
		client := &sweepserve.Client{Base: *server}
		results, err = client.RunProportion(context.Background(), sweepserve.JobSpec{
			Kind:    sweepserve.KindDesign,
			Sensors: *n,
			Pool:    *pool,
			Trials:  *trials,
			Seed:    *seed,
			Grid:    sweepserve.GridSpec{Qs: []int{*q}, Ps: []float64{*pOn}},
			Target:  *target,
			KMax:    *kMax,
		})
	} else {
		results, err = experiment.SweepKConnectivity(context.Background(), grid,
			experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed},
			func(pt experiment.GridPoint) (wsn.Config, error) {
				k, err := experiment.KOf(pt)
				if err != nil {
					return wsn.Config{}, err
				}
				ring, err := ringFor(k)
				if err != nil {
					return wsn.Config{}, err
				}
				scheme, err := keys.NewQComposite(*pool, ring, pt.Q)
				if err != nil {
					return wsn.Config{}, err
				}
				return wsn.Config{
					Sensors: *n,
					Scheme:  scheme,
					Channel: channel.OnOff{P: pt.P},
				}, nil
			})
	}
	if err != nil {
		return err
	}

	// One row per level k; every table column is a measurement curve.
	var ms []experiment.Measurement
	addCurve := func(pt experiment.GridPoint, curve string, y float64) {
		ms = append(ms, experiment.Measurement{Point: pt, Curve: curve, X: pt.X, Y: y, Lo: y, Hi: y})
	}
	for _, res := range results {
		pt := res.Point
		k, err := experiment.KOf(pt)
		if err != nil {
			return err
		}
		ring, err := ringFor(k)
		if err != nil {
			return err
		}
		m := core.Model{N: *n, K: ring, P: *pool, Q: *q, ChannelOn: *pOn}
		achieved, err := m.TheoreticalKConnProb(k)
		if err != nil {
			return err
		}
		alpha, err := m.Alpha(k)
		if err != nil {
			return err
		}
		tProb, err := m.EdgeProbability()
		if err != nil {
			return err
		}
		deg, err := m.ExpectedDegree()
		if err != nil {
			return err
		}
		addCurve(pt, "min ring K", float64(ring))
		addCurve(pt, "theory P[k-conn]", achieved)
		lo, hi := res.Value.WilsonInterval(1.96)
		ms = append(ms, experiment.Measurement{
			Point: pt, Curve: "simulated P[k-conn]",
			X: pt.X, Y: res.Value.Estimate(), Lo: lo, Hi: hi,
		})
		addCurve(pt, "alpha", alpha)
		addCurve(pt, "edge prob t", tProb)
		addCurve(pt, "expected degree", deg)
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"k"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", int(pt.X))}
		},
		FormatCell: func(m experiment.Measurement) string {
			switch m.Curve {
			case "min ring K":
				return fmt.Sprintf("%d", int(m.Y))
			case "alpha":
				return fmt.Sprintf("%+.3f", m.Y)
			case "edge prob t":
				return fmt.Sprintf("%.6f", m.Y)
			case "expected degree":
				return fmt.Sprintf("%.2f", m.Y)
			case "theory P[k-conn]":
				return fmt.Sprintf("%.4f", m.Y)
			}
			return fmt.Sprintf("%.3f", m.Y)
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}

	exact, err := core.ThresholdK(*n, *pool, *q, *pOn)
	if err != nil {
		return err
	}
	asym, err := core.ThresholdKAsymptotic(*n, *pool, *q, *pOn)
	if err != nil {
		return err
	}
	fmt.Printf("\neq. (9) connectivity threshold K*: exact %d, asymptotic %d\n", exact, asym)
	fmt.Println("(K* puts the network just above the connectivity scaling; the design table targets a probability.)")

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := presented.Table.RenderCSV(f); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}
