package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the migrated tool end to end at a small scale: the
// design loop, the per-level empirical validation sweep through
// SweepKConnectivity (sharded), and the pivoted table CSV must work from
// the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "designer.csv")
	os.Args = []string{"designer",
		"-n", "80", "-pool", "400", "-q", "1", "-p", "0.9",
		"-kmax", "2", "-target", "0.9",
		"-trials", "12", "-workers", "2", "-pointworkers", "2",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	head := strings.SplitN(text, "\n", 2)[0]
	for _, col := range []string{"k", "min ring K", "theory P[k-conn]", "simulated P[k-conn]", "alpha", "edge prob t", "expected degree"} {
		if !strings.Contains(head, col) {
			t.Errorf("csv header %q missing column %q", head, col)
		}
	}
	if lines := strings.Count(strings.TrimSpace(text), "\n"); lines != 2 {
		t.Errorf("csv has %d data rows, want 2 (k = 1, 2)", lines)
	}
}
