// Command resilience reproduces the q-composite motivation (experiment E7,
// the paper's Section I claim after Chan–Perrig–Song): under random node
// capture, the fraction of compromised external links is lower for larger q
// at small capture scales and higher at large scales, when the schemes are
// dimensioned to the same link probability (each q gets its own pool size).
//
// Both the simulated attack on deployed networks and the closed-form
// prediction are reported.
//
// The (q, capture-count) grid runs through experiment.SweepMean — each point
// deterministically seeded, trials parallel across the worker pool, grid
// points sharded under -pointworkers — with one reusable wsn.DeployerPool
// per scheme dimensioning, so repeated deployments amortize their buffers.
// The simulated and analytic curves are assembled by the shared
// Measurement/PivotSweep presenter. Note that evaluating a capture walks
// every secure link (adversary.Capture calls Links()), so each trial does
// materialize the full link-key table; the win here is the amortized
// deployment plus the parallelism, not lazy key derivation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sensors  = flag.Int("sensors", 400, "deployed sensors")
		ring     = flag.Int("ring", 60, "key ring size K (shared by all schemes)")
		target   = flag.Float64("target", 0.33, "link probability all schemes are dimensioned to")
		qMax     = flag.Int("qmax", 3, "largest q to compare (1..qmax)")
		xMax     = flag.Int("xmax", 120, "largest capture count")
		xStep    = flag.Int("xstep", 10, "capture count step")
		trials   = flag.Int("trials", 30, "deployments averaged per point")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write series CSV to this path")
	)
	flag.Parse()

	fmt.Printf("Node-capture resilience: K=%d, schemes dimensioned to link probability %.2f\n",
		*ring, *target)

	// Dimension each scheme: pool size giving s(K, P, q) ≈ target.
	pools := make(map[int]int, *qMax)
	for q := 1; q <= *qMax; q++ {
		pool, err := theory.PoolSizeForKeyShareProb(*ring, q, *target)
		if err != nil {
			return fmt.Errorf("dimension q=%d: %w", q, err)
		}
		pools[q] = pool
		fmt.Printf("  q=%d: pool P=%d\n", q, pool)
	}
	fmt.Printf("%d sensors, %d deployments per point\n\n", *sensors, *trials)

	var qs []int
	for q := 1; q <= *qMax; q++ {
		qs = append(qs, q)
	}
	var captures []float64
	for x := 0; x <= *xMax; x += *xStep {
		captures = append(captures, float64(x))
	}

	start := time.Now()
	// One sweep over the (q, capture count) grid; each q dimension reuses a
	// single DeployerPool across all its capture counts and trials (built
	// up front so the map is read-only under point sharding — DeployerPool
	// itself is safe for concurrent Get/Put). A trial deploys from the
	// per-trial stream and runs the capture with the same stream, so every
	// point is reproducible in isolation.
	deployerPools := map[int]*wsn.DeployerPool{}
	for _, q := range qs {
		scheme, err := keys.NewQComposite(pools[q], *ring, q)
		if err != nil {
			return err
		}
		dp, err := wsn.NewDeployerPool(wsn.Config{
			Sensors: *sensors,
			Scheme:  scheme,
			Channel: channel.AlwaysOn{},
		})
		if err != nil {
			return err
		}
		deployerPools[q] = dp
	}
	results, err := experiment.SweepMean(context.Background(),
		experiment.Grid{Ks: []int{*ring}, Qs: qs, Xs: captures},
		experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed},
		func(pt experiment.GridPoint) (montecarlo.Sample, error) {
			dp := deployerPools[pt.Q]
			captured := int(pt.X)
			return func(trial int, r *rng.Rand) (float64, error) {
				d := dp.Get()
				defer dp.Put(d)
				net, err := d.DeployRand(r)
				if err != nil {
					return 0, err
				}
				res, err := adversary.CaptureRandom(net, r, captured)
				if err != nil {
					return 0, err
				}
				return res.Fraction(), nil
			}, nil
		})
	if err != nil {
		return err
	}

	// Simulated curves from the sweep plus the closed-form prediction as
	// theory-only curves, pivoted into one captured-count-rowed table.
	ms := experiment.MeanMeasurements(results, 1.96,
		func(pt experiment.GridPoint) float64 { return pt.X },
		func(pt experiment.GridPoint) string { return fmt.Sprintf("q=%d simulated", pt.Q) },
	)
	for _, res := range results {
		pt := res.Point
		anaFrac, err := adversary.AnalyticCompromiseFraction(pools[pt.Q], *ring, pt.Q, int(pt.X))
		if err != nil {
			return err
		}
		ms = append(ms, experiment.Measurement{
			Point: pt, Curve: fmt.Sprintf("q=%d analytic", pt.Q),
			X: pt.X, Y: anaFrac, Lo: anaFrac, Hi: anaFrac,
		})
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"captured"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", int(pt.X))}
		},
		FormatCell: func(m experiment.Measurement) string {
			return fmt.Sprintf("%.4f", m.Y)
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, presented.Series, experiment.ChartOptions{
		Title:  "Fraction of external links compromised vs sensors captured",
		XLabel: "captured sensors x",
		YLabel: "compromised fraction",
		YMin:   0, YMax: 1,
		Width: 76, Height: 20,
	}); err != nil {
		return err
	}
	fmt.Println("\nExpected shape (Chan et al.): larger q lower at small x, crossing over at large x.")

	if *csvPath != "" {
		if err := presented.SaveSeriesCSV(*csvPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
