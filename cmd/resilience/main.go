// Command resilience reproduces the q-composite motivation (experiment E7,
// the paper's Section I claim after Chan–Perrig–Song): under random node
// capture, the fraction of compromised external links is lower for larger q
// at small capture scales and higher at large scales, when the schemes are
// dimensioned to the same link probability (each q gets its own pool size).
//
// Both the simulated attack on deployed networks and the closed-form
// prediction are reported.
//
// The (q, capture-count) grid runs through experiment.SweepMean — each point
// deterministically seeded, trials parallel across the worker pool — with one
// reusable wsn.DeployerPool per scheme dimensioning, so repeated deployments
// amortize their buffers. Note that evaluating a capture walks every secure
// link (adversary.Capture calls Links()), so each trial does materialize the
// full link-key table; the win here is the amortized deployment plus the
// parallelism, not lazy key derivation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sensors = flag.Int("sensors", 400, "deployed sensors")
		ring    = flag.Int("ring", 60, "key ring size K (shared by all schemes)")
		target  = flag.Float64("target", 0.33, "link probability all schemes are dimensioned to")
		qMax    = flag.Int("qmax", 3, "largest q to compare (1..qmax)")
		xMax    = flag.Int("xmax", 120, "largest capture count")
		xStep   = flag.Int("xstep", 10, "capture count step")
		trials  = flag.Int("trials", 30, "deployments averaged per point")
		workers = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		csvPath = flag.String("csv", "", "write series CSV to this path")
	)
	flag.Parse()

	fmt.Printf("Node-capture resilience: K=%d, schemes dimensioned to link probability %.2f\n",
		*ring, *target)

	// Dimension each scheme: pool size giving s(K, P, q) ≈ target.
	pools := make(map[int]int, *qMax)
	for q := 1; q <= *qMax; q++ {
		pool, err := theory.PoolSizeForKeyShareProb(*ring, q, *target)
		if err != nil {
			return fmt.Errorf("dimension q=%d: %w", q, err)
		}
		pools[q] = pool
		fmt.Printf("  q=%d: pool P=%d\n", q, pool)
	}
	fmt.Printf("%d sensors, %d deployments per point\n\n", *sensors, *trials)

	var qs []int
	for q := 1; q <= *qMax; q++ {
		qs = append(qs, q)
	}
	var captures []float64
	for x := 0; x <= *xMax; x += *xStep {
		captures = append(captures, float64(x))
	}

	start := time.Now()
	// One sweep over the (q, capture count) grid; each q dimension reuses a
	// single DeployerPool across all its capture counts and trials. A trial
	// deploys from the per-trial stream and runs the capture with the same
	// stream, so every point is reproducible in isolation.
	deployerPools := map[int]*wsn.DeployerPool{}
	results, err := experiment.SweepMean(context.Background(),
		experiment.Grid{Ks: []int{*ring}, Qs: qs, Xs: captures},
		experiment.SweepConfig{Trials: *trials, Workers: *workers, Seed: *seed},
		func(pt experiment.GridPoint) (montecarlo.Sample, error) {
			dp, ok := deployerPools[pt.Q]
			if !ok {
				scheme, err := keys.NewQComposite(pools[pt.Q], pt.K, pt.Q)
				if err != nil {
					return nil, err
				}
				dp, err = wsn.NewDeployerPool(wsn.Config{
					Sensors: *sensors,
					Scheme:  scheme,
					Channel: channel.AlwaysOn{},
				})
				if err != nil {
					return nil, err
				}
				deployerPools[pt.Q] = dp
			}
			captured := int(pt.X)
			return func(trial int, r *rng.Rand) (float64, error) {
				d := dp.Get()
				defer dp.Put(d)
				net, err := d.DeployRand(r)
				if err != nil {
					return 0, err
				}
				res, err := adversary.CaptureRandom(net, r, captured)
				if err != nil {
					return 0, err
				}
				return res.Fraction(), nil
			}, nil
		})
	if err != nil {
		return err
	}

	var series []experiment.Series
	table := experiment.NewTable("captured", "q", "simulated fraction", "analytic fraction")
	curves := map[int][2]*experiment.Series{}
	for _, q := range qs {
		sim := &experiment.Series{Name: fmt.Sprintf("q=%d simulated", q)}
		ana := &experiment.Series{Name: fmt.Sprintf("q=%d analytic", q)}
		curves[q] = [2]*experiment.Series{sim, ana}
	}
	for _, res := range results {
		q, x := res.Point.Q, int(res.Point.X)
		simFrac := res.Value.Mean()
		anaFrac, err := adversary.AnalyticCompromiseFraction(pools[q], *ring, q, x)
		if err != nil {
			return err
		}
		curves[q][0].Add(res.Point.X, simFrac)
		curves[q][1].Add(res.Point.X, anaFrac)
		table.AddRow(
			fmt.Sprintf("%d", x),
			fmt.Sprintf("%d", q),
			fmt.Sprintf("%.4f", simFrac),
			fmt.Sprintf("%.4f", anaFrac),
		)
	}
	for _, q := range qs {
		series = append(series, *curves[q][0], *curves[q][1])
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, series, experiment.ChartOptions{
		Title:  "Fraction of external links compromised vs sensors captured",
		XLabel: "captured sensors x",
		YLabel: "compromised fraction",
		YMin:   0, YMax: 1,
		Width: 76, Height: 20,
	}); err != nil {
		return err
	}
	fmt.Println("\nExpected shape (Chan et al.): larger q lower at small x, crossing over at large x.")

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := experiment.WriteSeriesCSV(f, series); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
