// Command resilience evaluates node-capture resilience in two modes.
//
// The classic mode (default) reproduces the q-composite motivation
// (experiment E7, the paper's Section I claim after Chan–Perrig–Song): under
// random node capture, the fraction of compromised external links is lower
// for larger q at small capture scales and higher at large scales, when the
// schemes are dimensioned to the same link probability (each q gets its own
// pool size). Both the simulated attack on deployed networks and the
// closed-form prediction are reported.
//
// The timeline mode (-timeline) runs composable ATTACK CAMPAIGNS through
// adversary.RunCampaign: each semicolon-separated spec — e.g.
// "capture:20;capture:10,fail:10" — is one campaign of ordered steps
// (capture, capture-targeted, fail, fail-targeted, jam, revoke), swept over
// an attack-budget axis via experiment.SweepCampaign so the output reads
// "fraction of the network still securely connected vs attack budget", one
// curve per campaign. Compromise propagates across steps: keys captured
// early compromise links evaluated later.
//
// Both modes run on the sweep fabric — parameter-derived point seeds, grid
// points sharded under -pointworkers with bit-identical results, and
// -checkpoint/-resume journaling with SIGINT/SIGTERM draining — with
// per-point wsn.DeployerPools amortizing deployments.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/cmdutil"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sensors  = flag.Int("sensors", 400, "deployed sensors")
		ring     = flag.Int("ring", 60, "key ring size K (shared by all schemes)")
		target   = flag.Float64("target", 0.33, "link probability all schemes are dimensioned to")
		qMax     = flag.Int("qmax", 3, "classic mode: largest q to compare (1..qmax)")
		xMax     = flag.Int("xmax", 120, "classic mode: largest capture count")
		xStep    = flag.Int("xstep", 10, "capture count / attack budget step")
		trials   = flag.Int("trials", 30, "deployments averaged per point")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write series CSV to this path")
		timeline = flag.String("timeline", "", `timeline mode: semicolon-separated attack campaigns, each "kind:count,kind:count,..." (kinds: capture, capture-targeted, fail, fail-targeted, jam, revoke)`)
		qTl      = flag.Int("q", 2, "timeline mode: overlap requirement q")
	)
	journal := cmdutil.RegisterJournal()
	flag.Parse()
	if err := journal.Open(); err != nil {
		return err
	}
	defer journal.Close()

	if *xStep <= 0 {
		return fmt.Errorf("-xstep %d must be positive", *xStep)
	}
	ctx, stop := cmdutil.SignalContext()
	defer stop()
	cfg := experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed}

	if *timeline != "" {
		return runTimelines(ctx, journal, cfg, timelineOpts{
			specs: *timeline, sensors: *sensors, ring: *ring, target: *target,
			q: *qTl, xStep: *xStep, csvPath: *csvPath,
		})
	}
	return runClassic(ctx, journal, cfg, classicOpts{
		sensors: *sensors, ring: *ring, target: *target,
		qMax: *qMax, xMax: *xMax, xStep: *xStep, csvPath: *csvPath,
	})
}

// dimension returns the pool size giving key-share probability ≈ target at
// (ring, q) — Chan et al.'s same-link-probability comparison discipline.
func dimension(ring, q int, target float64) (int, error) {
	pool, err := theory.PoolSizeForKeyShareProb(ring, q, target)
	if err != nil {
		return 0, fmt.Errorf("dimension q=%d: %w", q, err)
	}
	return pool, nil
}

type classicOpts struct {
	sensors, ring     int
	target            float64
	qMax, xMax, xStep int
	csvPath           string
}

func runClassic(ctx context.Context, journal *cmdutil.Journal, cfg experiment.SweepConfig, opt classicOpts) error {
	fmt.Printf("Node-capture resilience: K=%d, schemes dimensioned to link probability %.2f\n",
		opt.ring, opt.target)

	pools := make(map[int]int, opt.qMax)
	for q := 1; q <= opt.qMax; q++ {
		pool, err := dimension(opt.ring, q, opt.target)
		if err != nil {
			return err
		}
		pools[q] = pool
		fmt.Printf("  q=%d: pool P=%d\n", q, pool)
	}
	fmt.Printf("%d sensors, %d deployments per point\n\n", opt.sensors, cfg.Trials)

	var qs []int
	for q := 1; q <= opt.qMax; q++ {
		qs = append(qs, q)
	}
	var captures []float64
	for x := 0; x <= opt.xMax; x += opt.xStep {
		captures = append(captures, float64(x))
	}

	start := time.Now()
	// One sweep over the (q, capture count) grid; each q dimension reuses a
	// single DeployerPool across all its capture counts and trials (built
	// up front so the map is read-only under point sharding — DeployerPool
	// itself is safe for concurrent Get/Put). A trial deploys from the
	// per-trial stream and runs the capture with the same stream, so every
	// point is reproducible in isolation.
	deployerPools := map[int]*wsn.DeployerPool{}
	for _, q := range qs {
		scheme, err := keys.NewQComposite(pools[q], opt.ring, q)
		if err != nil {
			return err
		}
		dp, err := wsn.NewDeployerPool(wsn.Config{
			Sensors: opt.sensors,
			Scheme:  scheme,
			Channel: channel.AlwaysOn{},
		})
		if err != nil {
			return err
		}
		deployerPools[q] = dp
	}
	sweepCfg := journal.Apply(cfg, fmt.Sprintf("resilience classic n=%d K=%d target=%g qmax=%d",
		opt.sensors, opt.ring, opt.target, opt.qMax))
	results, err := experiment.SweepMean(ctx,
		experiment.Grid{Ks: []int{opt.ring}, Qs: qs, Xs: captures},
		sweepCfg,
		func(pt experiment.GridPoint) (montecarlo.Sample, error) {
			dp := deployerPools[pt.Q]
			captured := int(pt.X)
			return func(trial int, r *rng.Rand) (float64, error) {
				d := dp.Get()
				defer dp.Put(d)
				net, err := d.DeployRand(r)
				if err != nil {
					return 0, err
				}
				res, err := adversary.CaptureRandom(net, r, captured)
				if err != nil {
					return 0, err
				}
				return res.Fraction(), nil
			}, nil
		})
	if err != nil {
		return journal.Hint(err)
	}

	// Simulated curves from the sweep plus the closed-form prediction as
	// theory-only curves, pivoted into one captured-count-rowed table.
	ms := experiment.MeanMeasurements(results, 1.96,
		func(pt experiment.GridPoint) float64 { return pt.X },
		func(pt experiment.GridPoint) string { return fmt.Sprintf("q=%d simulated", pt.Q) },
	)
	for _, res := range results {
		pt := res.Point
		anaFrac, err := adversary.AnalyticCompromiseFraction(pools[pt.Q], opt.ring, pt.Q, int(pt.X))
		if err != nil {
			return err
		}
		ms = append(ms, experiment.Measurement{
			Point: pt, Curve: fmt.Sprintf("q=%d analytic", pt.Q),
			X: pt.X, Y: anaFrac, Lo: anaFrac, Hi: anaFrac,
		})
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"captured"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", int(pt.X))}
		},
		FormatCell: func(m experiment.Measurement) string {
			return fmt.Sprintf("%.4f", m.Y)
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, presented.Series, experiment.ChartOptions{
		Title:  "Fraction of external links compromised vs sensors captured",
		XLabel: "captured sensors x",
		YLabel: "compromised fraction",
		YMin:   0, YMax: 1,
		Width: 76, Height: 20,
	}); err != nil {
		return err
	}
	fmt.Println("\nExpected shape (Chan et al.): larger q lower at small x, crossing over at large x.")

	if opt.csvPath != "" {
		if err := presented.SaveSeriesCSV(opt.csvPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", opt.csvPath)
	}
	return nil
}

type timelineOpts struct {
	specs         string
	sensors, ring int
	target        float64
	q, xStep      int
	csvPath       string
}

func runTimelines(ctx context.Context, journal *cmdutil.Journal, cfg experiment.SweepConfig, opt timelineOpts) error {
	var timelines []adversary.Timeline
	for _, spec := range strings.Split(opt.specs, ";") {
		if strings.TrimSpace(spec) == "" {
			continue
		}
		tl, err := adversary.ParseTimeline(spec)
		if err != nil {
			return fmt.Errorf("parse -timeline: %w", err)
		}
		timelines = append(timelines, tl)
	}
	if len(timelines) == 0 {
		return fmt.Errorf("parse -timeline: no campaigns in %q", opt.specs)
	}
	pool, err := dimension(opt.ring, opt.q, opt.target)
	if err != nil {
		return err
	}

	// One shared budget axis across the campaigns: 0 up to the largest total
	// budget in xstep strides, always including that total. Budgets past a
	// shorter campaign's end run the whole campaign (the curve flattens).
	maxBudget := 0
	for _, tl := range timelines {
		if b := tl.TotalBudget(); b > maxBudget {
			maxBudget = b
		}
	}
	var budgets []float64
	for x := 0; x < maxBudget; x += opt.xStep {
		budgets = append(budgets, float64(x))
	}
	budgets = append(budgets, float64(maxBudget))

	fmt.Printf("Attack campaigns: n=%d, K=%d, q=%d, pool P=%d (link probability %.2f)\n",
		opt.sensors, opt.ring, opt.q, pool, opt.target)
	for _, tl := range timelines {
		fmt.Printf("  campaign %q: total budget %d\n", tl, tl.TotalBudget())
	}
	fmt.Printf("%d deployments per point\n\n", cfg.Trials)

	build := func(pt experiment.GridPoint) (wsn.Config, error) {
		scheme, err := keys.NewQComposite(pool, pt.K, pt.Q)
		if err != nil {
			return wsn.Config{}, err
		}
		return wsn.Config{Sensors: opt.sensors, Scheme: scheme, Channel: channel.AlwaysOn{}}, nil
	}
	grid := experiment.Grid{Ks: []int{opt.ring}, Qs: []int{opt.q}, Xs: budgets}
	budgetOf := func(pt experiment.GridPoint) float64 { return pt.X }

	start := time.Now()
	var all, secure []experiment.Measurement
	for _, tl := range timelines {
		// Each campaign journals under its own label, so one -checkpoint file
		// holds every campaign's section and each resumes only its own.
		sweepCfg := journal.Apply(cfg, fmt.Sprintf("resilience timeline %s n=%d K=%d q=%d pool=%d",
			tl, opt.sensors, opt.ring, opt.q, pool))
		results, err := experiment.SweepCampaign(ctx, grid, sweepCfg,
			experiment.CampaignSpec{Timeline: tl, Build: build})
		if err != nil {
			return journal.Hint(err)
		}
		sec := experiment.MeanVecMeasurements(results, experiment.CampaignSecureFrac, 1.96,
			budgetOf, fmt.Sprintf("secure %s", tl))
		secure = append(secure, sec...)
		all = append(all, sec...)
		all = append(all, experiment.MeanVecMeasurements(results, experiment.CampaignCompromisedFrac, 1.96,
			budgetOf, fmt.Sprintf("compromised %s", tl))...)
	}

	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"budget"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", int(pt.X))}
		},
		FormatCell: func(m experiment.Measurement) string {
			return fmt.Sprintf("%.4f", m.Y)
		},
	}, all)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	// The chart shows the headline statistic only: the securely connected
	// fraction per campaign (the table above carries the compromise curves).
	secureChart := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"budget"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", int(pt.X))}
		},
	}, secure)
	if err := experiment.RenderChart(os.Stdout, secureChart.Series, experiment.ChartOptions{
		Title:  "Fraction of alive sensors still securely connected vs attack budget",
		XLabel: "attack budget (sensors captured/failed, links jammed, keys revoked)",
		YLabel: "securely connected fraction",
		YMin:   0, YMax: 1,
		Width: 76, Height: 20,
	}); err != nil {
		return err
	}
	fmt.Println("\nReading: 'secure' is the giant component of the uncompromised secure subgraph")
	fmt.Println("over alive sensors; compromise propagates, so keys captured early poison links")
	fmt.Println("counted later. Revocation steps trade liveness for clearing compromise.")

	if opt.csvPath != "" {
		if err := presented.SaveSeriesCSV(opt.csvPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", opt.csvPath)
	}
	return nil
}
