// Command resilience reproduces the q-composite motivation (experiment E7,
// the paper's Section I claim after Chan–Perrig–Song): under random node
// capture, the fraction of compromised external links is lower for larger q
// at small capture scales and higher at large scales, when the schemes are
// dimensioned to the same link probability (each q gets its own pool size).
//
// Both the simulated attack on deployed networks and the closed-form
// prediction are reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sensors = flag.Int("sensors", 400, "deployed sensors")
		ring    = flag.Int("ring", 60, "key ring size K (shared by all schemes)")
		target  = flag.Float64("target", 0.33, "link probability all schemes are dimensioned to")
		qMax    = flag.Int("qmax", 3, "largest q to compare (1..qmax)")
		xMax    = flag.Int("xmax", 120, "largest capture count")
		xStep   = flag.Int("xstep", 10, "capture count step")
		trials  = flag.Int("trials", 30, "deployments averaged per point")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		csvPath = flag.String("csv", "", "write series CSV to this path")
	)
	flag.Parse()

	fmt.Printf("Node-capture resilience: K=%d, schemes dimensioned to link probability %.2f\n",
		*ring, *target)

	// Dimension each scheme: pool size giving s(K, P, q) ≈ target.
	pools := make(map[int]int, *qMax)
	for q := 1; q <= *qMax; q++ {
		pool, err := theory.PoolSizeForKeyShareProb(*ring, q, *target)
		if err != nil {
			return fmt.Errorf("dimension q=%d: %w", q, err)
		}
		pools[q] = pool
		fmt.Printf("  q=%d: pool P=%d\n", q, pool)
	}
	fmt.Printf("%d sensors, %d deployments per point\n\n", *sensors, *trials)

	var series []experiment.Series
	table := experiment.NewTable("captured", "q", "simulated fraction", "analytic fraction")
	start := time.Now()
	for q := 1; q <= *qMax; q++ {
		sim := experiment.Series{Name: fmt.Sprintf("q=%d simulated", q)}
		ana := experiment.Series{Name: fmt.Sprintf("q=%d analytic", q)}
		scheme, err := keys.NewQComposite(pools[q], *ring, q)
		if err != nil {
			return err
		}
		for x := 0; x <= *xMax; x += *xStep {
			var fracSum float64
			for trial := 0; trial < *trials; trial++ {
				net, err := wsn.Deploy(wsn.Config{
					Sensors: *sensors,
					Scheme:  scheme,
					Channel: channel.AlwaysOn{},
					Seed:    *seed + uint64(q*100000+x*100+trial),
				})
				if err != nil {
					return fmt.Errorf("deploy q=%d x=%d: %w", q, x, err)
				}
				res, err := adversary.CaptureRandom(net, rng.NewStream(*seed, uint64(q*100000+x*100+trial)), x)
				if err != nil {
					return fmt.Errorf("capture q=%d x=%d: %w", q, x, err)
				}
				fracSum += res.Fraction()
			}
			simFrac := fracSum / float64(*trials)
			anaFrac, err := adversary.AnalyticCompromiseFraction(pools[q], *ring, q, x)
			if err != nil {
				return err
			}
			sim.Add(float64(x), simFrac)
			ana.Add(float64(x), anaFrac)
			table.AddRow(
				fmt.Sprintf("%d", x),
				fmt.Sprintf("%d", q),
				fmt.Sprintf("%.4f", simFrac),
				fmt.Sprintf("%.4f", anaFrac),
			)
		}
		series = append(series, sim, ana)
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, series, experiment.ChartOptions{
		Title:  "Fraction of external links compromised vs sensors captured",
		XLabel: "captured sensors x",
		YLabel: "compromised fraction",
		YMin:   0, YMax: 1,
		Width: 76, Height: 20,
	}); err != nil {
		return err
	}
	fmt.Println("\nExpected shape (Chan et al.): larger q lower at small x, crossing over at large x.")

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := experiment.WriteSeriesCSV(f, series); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
