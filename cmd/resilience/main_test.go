package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the migrated tool end to end at a small scale: scheme
// dimensioning, the sharded (q × capture) capture sweep on prebuilt
// DeployerPools, the analytic overlay, and the series CSV must work from
// the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "resilience.csv")
	os.Args = []string{"resilience",
		"-sensors", "40", "-ring", "12", "-target", "0.4", "-qmax", "2",
		"-xmax", "10", "-xstep", "5",
		"-trials", "6", "-workers", "2", "-pointworkers", "3",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, series := range []string{"q=1 simulated", "q=1 analytic", "q=2 simulated", "q=2 analytic"} {
		if !strings.Contains(text, series) {
			t.Errorf("series csv missing curve %q", series)
		}
	}
}
