package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runResilience resets the flag surface and drives run() with the given argv
// tail, stdout discarded.
func runResilience(t *testing.T, args ...string) error {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet("resilience", flag.ExitOnError)
	os.Args = append([]string{"resilience"}, args...)
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()
	return run()
}

// TestRunSmoke drives the classic mode end to end at a small scale: scheme
// dimensioning, the sharded (q × capture) capture sweep on prebuilt
// DeployerPools, the analytic overlay, and the series CSV must work from
// the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "resilience.csv")
	err := runResilience(t,
		"-sensors", "40", "-ring", "12", "-target", "0.4", "-qmax", "2",
		"-xmax", "10", "-xstep", "5",
		"-trials", "6", "-workers", "2", "-pointworkers", "3",
		"-csv", csv,
	)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, series := range []string{"q=1 simulated", "q=1 analytic", "q=2 simulated", "q=2 analytic"} {
		if !strings.Contains(text, series) {
			t.Errorf("series csv missing curve %q", series)
		}
	}
}

// TestRunTimelineSmoke drives the timeline mode with two campaigns — pure
// capture vs capture+failure — and checks both campaigns' secure and
// compromised curves reach the CSV.
func TestRunTimelineSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "timeline.csv")
	err := runResilience(t,
		"-sensors", "40", "-ring", "12", "-target", "0.4", "-q", "2",
		"-timeline", "capture:20;capture:10,fail:10",
		"-xstep", "5",
		"-trials", "6", "-workers", "2", "-pointworkers", "3",
		"-csv", csv,
	)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, series := range []string{
		"secure capture:20", "compromised capture:20",
		"secure capture:10,fail:10", "compromised capture:10,fail:10",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("series csv missing curve %q", series)
		}
	}
}

func TestRunTimelineRejectsBadSpec(t *testing.T) {
	for _, spec := range []string{"steal:5", "capture:0", "capture", ";"} {
		if err := runResilience(t, "-timeline", spec, "-trials", "2"); err == nil {
			t.Errorf("timeline %q accepted", spec)
		}
	}
}

// TestCheckpointResumeRoundTrip exercises the multi-section journal in
// timeline mode: one -checkpoint file holds each campaign's section under
// its own label. The resumed run must restore every campaign from its own
// section, recompute nothing, and reproduce the CSV bit for bit.
func TestCheckpointResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "resilience.journal")
	csv1 := filepath.Join(dir, "run1.csv")
	csv2 := filepath.Join(dir, "run2.csv")
	args := []string{
		"-sensors", "40", "-ring", "12", "-target", "0.4", "-q", "2",
		"-timeline", "capture:16;capture:8,fail:8",
		"-xstep", "8",
		"-trials", "5", "-workers", "2", "-pointworkers", "2",
		"-checkpoint", journal,
	}
	if err := runResilience(t, append(args, "-csv", csv1)...); err != nil {
		t.Fatalf("checkpointed run failed: %v", err)
	}
	first, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(first, []byte(`"header"`)); n != 2 {
		t.Fatalf("run 1 wrote %d headers, want 2 (one per campaign)", n)
	}
	if err := runResilience(t, append(args, "-csv", csv2)...); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	second, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	appended := second[len(first):]
	if n := bytes.Count(appended, []byte(`"point"`)); n != 0 {
		t.Errorf("resume recomputed %d points, want 0", n)
	}
	if n := bytes.Count(appended, []byte(`"header"`)); n != 2 {
		t.Errorf("resume appended %d headers, want 2", n)
	}
	a, _ := os.ReadFile(csv1)
	b, _ := os.ReadFile(csv2)
	if !bytes.Equal(a, b) {
		t.Error("resumed run's CSV differs from the original run's")
	}
}

// TestCheckpointResumeClassicMode: the classic mode is wired through the same
// journal plumbing.
func TestCheckpointResumeClassicMode(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "classic.journal")
	args := []string{
		"-sensors", "40", "-ring", "12", "-target", "0.4", "-qmax", "1",
		"-xmax", "10", "-xstep", "5", "-trials", "4",
		"-checkpoint", journal,
	}
	if err := runResilience(t, args...); err != nil {
		t.Fatalf("checkpointed run failed: %v", err)
	}
	first, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := runResilience(t, args...); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	second, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(second[len(first):], []byte(`"point"`)); n != 0 {
		t.Errorf("resume recomputed %d points, want 0", n)
	}
}
