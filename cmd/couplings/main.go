// Command couplings empirically exercises the machinery of the paper's
// proofs (Lemmas 3–6): the coupling chain
//
//	G(n, z_n)  ⊑  G_{n,q}(n, K, P, p)      with z_n = y_n·p (Lemma 3)
//	G(n, y_n)  ⊑  H_q(n, x_n, P)           (Lemma 6)
//	H_q(n, x_n, P) ⊑ G_q(n, K, P)          (Lemma 5, sampled coupling)
//
// It reports (a) the success rate of the implemented Lemma 5 monotone
// coupling, and (b) the sandwich that the chain implies for k-connectivity:
//
//	P[G(n, z_n) k-conn] − o(1) ≤ P[G_{n,q} k-conn] ≤ P[min degree ≥ k]
//
// The model side runs two seed-paired sweeps over the ring-size grid: a CSR
// SweepProportion for k-connectivity (which needs the graph) and a streaming
// experiment.SweepMinDegree for the upper bound (graph-free: the channel draw
// feeds the degree accumulator directly). Because sweep seeds are derived
// from the grid point and config — not from execution order — equal cfg and
// grid make trial t of both sweeps deploy the IDENTICAL topology, so the
// sample-by-sample ordering (k-connected ⇒ min degree ≥ k) still holds by
// construction; the per-point success counts are checked at runtime. The
// Erdős–Rényi lower bound is an independent SweepProportion on the same grid
// (its own seed sub-stream, so the two estimates really are independent),
// and everything pivots into one table via experiment.PivotSweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "couplings:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 1000, "number of sensors")
		pool     = flag.Int("pool", 10000, "key pool size P")
		q        = flag.Int("q", 2, "required key overlap")
		pOn      = flag.Float64("p", 0.5, "channel-on probability")
		k        = flag.Int("k", 2, "connectivity level")
		kMin     = flag.Int("kmin", 44, "smallest ring size K")
		kEnd     = flag.Int("kmax", 56, "largest ring size K")
		kStep    = flag.Int("kstep", 4, "ring size step")
		trials   = flag.Int("trials", 200, "samples per estimate")
		couplesN = flag.Int("couples", 50, "sampled Lemma 5 couplings per K")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write table CSV to this path")
	)
	flag.Parse()

	fmt.Printf("Coupling lemmas in practice: n=%d, P=%d, q=%d, p=%g, k=%d\n\n",
		*n, *pool, *q, *pOn, *k)

	var rings []int
	for ring := *kMin; ring <= *kEnd; ring += *kStep {
		rings = append(rings, ring)
	}

	// (a) Sample the Lemma 5 coupling per ring size and record how often the
	// coupling event holds and whether containment ever fails (it must not).
	type couplingRow struct {
		x, z               float64
		coupled, contained int
	}
	couplingOf := make(map[int]couplingRow, len(rings))
	for _, ring := range rings {
		row := couplingRow{
			x: theory.CouplingX(*n, *pool, ring),
			z: theory.CouplingZ(*n, *pool, ring, *q, *pOn),
		}
		r := rng.NewStream(*seed, uint64(ring))
		for i := 0; i < *couplesN; i++ {
			pair, err := randgraph.SampleCoupled(r, *n, ring, *pool, *q, row.x)
			if err != nil {
				return fmt.Errorf("K=%d coupling: %w", ring, err)
			}
			if pair.Coupled {
				row.coupled++
			}
			if pair.Binomial.IsSpanningSubgraphOf(pair.Uniform) {
				row.contained++
			}
		}
		couplingOf[ring] = row
	}

	// (b) The k-connectivity sandwich. Seeds are parameter-derived, so running
	// the CSR k-connectivity sweep and the streaming min-degree sweep with the
	// same grid and cfg deploys the identical topology in trial t of both —
	// the pairing the legacy one-deployment-two-statistics trial provided,
	// now with the min-degree half graph-free. The ER lower bound is an
	// independent sweep on the same grid and seeds.
	grid := experiment.Grid{Ks: rings, Qs: []int{*q}, Ps: []float64{*pOn}}
	cfg := experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed}
	ctx := context.Background()
	start := time.Now()
	build := func(pt experiment.GridPoint) (wsn.Config, error) {
		scheme, err := keys.NewQComposite(*pool, pt.K, pt.Q)
		if err != nil {
			return wsn.Config{}, err
		}
		return wsn.Config{Sensors: *n, Scheme: scheme, Channel: channel.OnOff{P: pt.P}}, nil
	}
	kconn, err := experiment.SweepProportion(ctx, grid, cfg,
		func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			deployCfg, err := build(pt)
			if err != nil {
				return nil, err
			}
			dp, err := wsn.NewDeployerPool(deployCfg)
			if err != nil {
				return nil, err
			}
			return func(trial int, r *rng.Rand) (bool, error) {
				d := dp.Get()
				defer dp.Put(d)
				net, err := d.DeployRand(r)
				if err != nil {
					return false, err
				}
				return net.IsKConnected(*k)
			}, nil
		})
	if err != nil {
		return err
	}
	minDeg, err := experiment.SweepMinDegree(ctx, grid, cfg, *k, build)
	if err != nil {
		return err
	}
	for i, res := range kconn {
		if res.Value.Successes > minDeg[i].Value.Successes {
			return fmt.Errorf("K=%d: %d k-connected trials but only %d with min degree >= k (seed pairing broken)",
				res.Point.K, res.Value.Successes, minDeg[i].Value.Successes)
		}
	}
	// The ER bound runs on its own sub-stream of the base seed: identical
	// grid and cfg would otherwise replay the exact per-trial streams of the
	// model sweep, correlating the two estimates the slack treats as
	// independent.
	erCfg := cfg
	erCfg.Seed = rng.StreamSeed(cfg.Seed, 1)
	er, err := experiment.SweepProportion(ctx, grid, erCfg,
		func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			z := couplingOf[pt.K].z
			return func(trial int, r *rng.Rand) (bool, error) {
				g, err := randgraph.ErdosRenyi(r, *n, z)
				if err != nil {
					return false, err
				}
				return graphalgo.IsKConnected(g, *k), nil
			}, nil
		})
	if err != nil {
		return err
	}

	// Monte Carlo slack on the cross-estimate comparisons: 3σ for the
	// difference of two independent proportions, worst case p = 1/2.
	slack := 3 * math.Sqrt(2*0.25/float64(*trials))
	ms := experiment.ProportionMeasurements(er, 0,
		func(pt experiment.GridPoint) float64 { return float64(pt.K) },
		func(experiment.GridPoint) string { return "P[ER(z) k-conn]" })
	ms = append(ms, experiment.ProportionMeasurements(kconn, 0,
		func(pt experiment.GridPoint) float64 { return float64(pt.K) },
		func(experiment.GridPoint) string { return "P[G_nq k-conn]" })...)
	ms = append(ms, experiment.ProportionMeasurements(minDeg, 0,
		func(pt experiment.GridPoint) float64 { return float64(pt.K) },
		func(experiment.GridPoint) string { return "P[minDeg>=k]" })...)
	for i, res := range er {
		gEst := kconn[i].Value.Estimate()
		mdEst := minDeg[i].Value.Estimate()
		ok := 0.0
		if res.Value.Estimate() <= gEst+slack && gEst <= mdEst {
			ok = 1
		}
		ms = append(ms, experiment.Measurement{
			Point: res.Point, Curve: "sandwich ok",
			X: float64(res.Point.K), Y: ok, Lo: ok, Hi: ok,
		})
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"K", "x_n (66)", "z_n (58)", "Lemma5 coupled", "H⊑G held"},
		RowCells: func(pt experiment.GridPoint) []string {
			row := couplingOf[pt.K]
			return []string{
				fmt.Sprintf("%d", pt.K),
				fmt.Sprintf("%.6f", row.x),
				fmt.Sprintf("%.6f", row.z),
				fmt.Sprintf("%d/%d", row.coupled, *couplesN),
				fmt.Sprintf("%d/%d", row.contained, *couplesN),
			}
		},
		FormatCell: func(m experiment.Measurement) string {
			if m.Curve == "sandwich ok" {
				return fmt.Sprintf("%v", m.Y == 1)
			}
			return fmt.Sprintf("%.3f", m.Y)
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("\nReading: containment must hold in every sampled coupling; the ER lower")
	fmt.Println("bound (with z_n strictly below t) and the min-degree upper bound must")
	fmt.Println("bracket the model's k-connectivity probability — the skeleton of the proof.")
	fmt.Println("(The upper half holds sample by sample: shared parameter-derived seeds")
	fmt.Println("make trial t of both model sweeps deploy the identical topology, with the")
	fmt.Println("min-degree half running graph-free through the streaming accumulator.)")

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := presented.Table.RenderCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
