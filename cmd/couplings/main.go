// Command couplings empirically exercises the machinery of the paper's
// proofs (Lemmas 3–6): the coupling chain
//
//	G(n, z_n)  ⊑  G_{n,q}(n, K, P, p)      with z_n = y_n·p (Lemma 3)
//	G(n, y_n)  ⊑  H_q(n, x_n, P)           (Lemma 6)
//	H_q(n, x_n, P) ⊑ G_q(n, K, P)          (Lemma 5, sampled coupling)
//
// It reports (a) the success rate of the implemented Lemma 5 monotone
// coupling, and (b) the sandwich that the chain implies for k-connectivity:
//
//	P[G(n, z_n) k-conn] − o(1) ≤ P[G_{n,q} k-conn] ≤ P[min degree ≥ k]
//
// The model-side probabilities run as one experiment.SweepMeanVec over the
// ring-size grid: every trial deploys one network through a reusable
// wsn.DeployerPool and measures BOTH properties on that topology, so the
// upper-bound half of the sandwich holds sample by sample by construction.
// The Erdős–Rényi lower bound is an independent SweepProportion on the same
// grid (its own seed sub-stream, so the two estimates really are
// independent), and everything pivots into one table via
// experiment.PivotSweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "couplings:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 1000, "number of sensors")
		pool     = flag.Int("pool", 10000, "key pool size P")
		q        = flag.Int("q", 2, "required key overlap")
		pOn      = flag.Float64("p", 0.5, "channel-on probability")
		k        = flag.Int("k", 2, "connectivity level")
		kMin     = flag.Int("kmin", 44, "smallest ring size K")
		kEnd     = flag.Int("kmax", 56, "largest ring size K")
		kStep    = flag.Int("kstep", 4, "ring size step")
		trials   = flag.Int("trials", 200, "samples per estimate")
		couplesN = flag.Int("couples", 50, "sampled Lemma 5 couplings per K")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write table CSV to this path")
	)
	flag.Parse()

	fmt.Printf("Coupling lemmas in practice: n=%d, P=%d, q=%d, p=%g, k=%d\n\n",
		*n, *pool, *q, *pOn, *k)

	var rings []int
	for ring := *kMin; ring <= *kEnd; ring += *kStep {
		rings = append(rings, ring)
	}

	// (a) Sample the Lemma 5 coupling per ring size and record how often the
	// coupling event holds and whether containment ever fails (it must not).
	type couplingRow struct {
		x, z               float64
		coupled, contained int
	}
	couplingOf := make(map[int]couplingRow, len(rings))
	for _, ring := range rings {
		row := couplingRow{
			x: theory.CouplingX(*n, *pool, ring),
			z: theory.CouplingZ(*n, *pool, ring, *q, *pOn),
		}
		r := rng.NewStream(*seed, uint64(ring))
		for i := 0; i < *couplesN; i++ {
			pair, err := randgraph.SampleCoupled(r, *n, ring, *pool, *q, row.x)
			if err != nil {
				return fmt.Errorf("K=%d coupling: %w", ring, err)
			}
			if pair.Coupled {
				row.coupled++
			}
			if pair.Binomial.IsSpanningSubgraphOf(pair.Uniform) {
				row.contained++
			}
		}
		couplingOf[ring] = row
	}

	// (b) The k-connectivity sandwich. The model side measures both the
	// k-connectivity and the min-degree property on ONE deployment per trial;
	// the ER lower bound is an independent sweep on the same grid and seeds.
	grid := experiment.Grid{Ks: rings, Qs: []int{*q}, Ps: []float64{*pOn}}
	cfg := experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed}
	ctx := context.Background()
	start := time.Now()
	model, err := experiment.SweepMeanVec(ctx, grid, cfg, 2,
		func(pt experiment.GridPoint) (montecarlo.SampleVec, error) {
			scheme, err := keys.NewQComposite(*pool, pt.K, pt.Q)
			if err != nil {
				return nil, err
			}
			dp, err := wsn.NewDeployerPool(wsn.Config{
				Sensors: *n,
				Scheme:  scheme,
				Channel: channel.OnOff{P: pt.P},
			})
			if err != nil {
				return nil, err
			}
			return func(trial int, r *rng.Rand) ([]float64, error) {
				d := dp.Get()
				defer dp.Put(d)
				net, err := d.DeployRand(r)
				if err != nil {
					return nil, err
				}
				out := []float64{0, 0}
				kc, err := net.IsKConnected(*k)
				if err != nil {
					return nil, err
				}
				if kc {
					out[0] = 1
				}
				if net.FullSecureTopology().MinDegree() >= *k {
					out[1] = 1
				} else if kc {
					return nil, fmt.Errorf("K=%d trial %d: k-connected topology with min degree < k", pt.K, trial)
				}
				return out, nil
			}, nil
		})
	if err != nil {
		return err
	}
	// The ER bound runs on its own sub-stream of the base seed: identical
	// grid and cfg would otherwise replay the exact per-trial streams of the
	// model sweep, correlating the two estimates the slack treats as
	// independent.
	erCfg := cfg
	erCfg.Seed = rng.StreamSeed(cfg.Seed, 1)
	er, err := experiment.SweepProportion(ctx, grid, erCfg,
		func(pt experiment.GridPoint) (montecarlo.Trial, error) {
			z := couplingOf[pt.K].z
			return func(trial int, r *rng.Rand) (bool, error) {
				g, err := randgraph.ErdosRenyi(r, *n, z)
				if err != nil {
					return false, err
				}
				return graphalgo.IsKConnected(g, *k), nil
			}, nil
		})
	if err != nil {
		return err
	}

	// Monte Carlo slack on the cross-estimate comparisons: 3σ for the
	// difference of two independent proportions, worst case p = 1/2.
	slack := 3 * math.Sqrt(2*0.25/float64(*trials))
	ms := experiment.ProportionMeasurements(er, 0,
		func(pt experiment.GridPoint) float64 { return float64(pt.K) },
		func(experiment.GridPoint) string { return "P[ER(z) k-conn]" })
	ms = append(ms, experiment.MeanVecMeasurements(model, 0, 0,
		func(pt experiment.GridPoint) float64 { return float64(pt.K) }, "P[G_nq k-conn]")...)
	ms = append(ms, experiment.MeanVecMeasurements(model, 1, 0,
		func(pt experiment.GridPoint) float64 { return float64(pt.K) }, "P[minDeg>=k]")...)
	for i, res := range er {
		gEst := model[i].Values[0].Mean()
		mdEst := model[i].Values[1].Mean()
		ok := 0.0
		if res.Value.Estimate() <= gEst+slack && gEst <= mdEst {
			ok = 1
		}
		ms = append(ms, experiment.Measurement{
			Point: res.Point, Curve: "sandwich ok",
			X: float64(res.Point.K), Y: ok, Lo: ok, Hi: ok,
		})
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"K", "x_n (66)", "z_n (58)", "Lemma5 coupled", "H⊑G held"},
		RowCells: func(pt experiment.GridPoint) []string {
			row := couplingOf[pt.K]
			return []string{
				fmt.Sprintf("%d", pt.K),
				fmt.Sprintf("%.6f", row.x),
				fmt.Sprintf("%.6f", row.z),
				fmt.Sprintf("%d/%d", row.coupled, *couplesN),
				fmt.Sprintf("%d/%d", row.contained, *couplesN),
			}
		},
		FormatCell: func(m experiment.Measurement) string {
			if m.Curve == "sandwich ok" {
				return fmt.Sprintf("%v", m.Y == 1)
			}
			return fmt.Sprintf("%.3f", m.Y)
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("\nReading: containment must hold in every sampled coupling; the ER lower")
	fmt.Println("bound (with z_n strictly below t) and the min-degree upper bound must")
	fmt.Println("bracket the model's k-connectivity probability — the skeleton of the proof.")
	fmt.Println("(The upper half now holds sample by sample: both model statistics are")
	fmt.Println("measured on one deployment per trial.)")

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := presented.Table.RenderCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
