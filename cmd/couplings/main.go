// Command couplings empirically exercises the machinery of the paper's
// proofs (Lemmas 3–6): the coupling chain
//
//	G(n, z_n)  ⊑  G_{n,q}(n, K, P, p)      with z_n = y_n·p (Lemma 3)
//	G(n, y_n)  ⊑  H_q(n, x_n, P)           (Lemma 6)
//	H_q(n, x_n, P) ⊑ G_q(n, K, P)          (Lemma 5, sampled coupling)
//
// It reports (a) the success rate of the implemented Lemma 5 monotone
// coupling, and (b) the sandwich that the chain implies for k-connectivity:
//
//	P[G(n, z_n) k-conn] − o(1) ≤ P[G_{n,q} k-conn] ≤ P[min degree ≥ k]
//
// by estimating all three probabilities on independent samples.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "couplings:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 1000, "number of sensors")
		pool     = flag.Int("pool", 10000, "key pool size P")
		q        = flag.Int("q", 2, "required key overlap")
		pOn      = flag.Float64("p", 0.5, "channel-on probability")
		k        = flag.Int("k", 2, "connectivity level")
		kMin     = flag.Int("kmin", 44, "smallest ring size K")
		kEnd     = flag.Int("kmax", 56, "largest ring size K")
		kStep    = flag.Int("kstep", 4, "ring size step")
		trials   = flag.Int("trials", 200, "samples per estimate")
		couplesN = flag.Int("couples", 50, "sampled Lemma 5 couplings per K")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write table CSV to this path")
	)
	flag.Parse()

	fmt.Printf("Coupling lemmas in practice: n=%d, P=%d, q=%d, p=%g, k=%d\n\n",
		*n, *pool, *q, *pOn, *k)

	table := experiment.NewTable(
		"K", "x_n (66)", "z_n (58)", "Lemma5 coupled", "H⊑G held",
		"P[ER(z) k-conn]", "P[G_nq k-conn]", "P[minDeg>=k]", "sandwich ok")
	ctx := context.Background()
	start := time.Now()
	for ring := *kMin; ring <= *kEnd; ring += *kStep {
		x := theory.CouplingX(*n, *pool, ring)
		z := theory.CouplingZ(*n, *pool, ring, *q, *pOn)

		// (a) Sample the Lemma 5 coupling and record how often the coupling
		// event holds and whether containment ever fails (it must not).
		coupled, contained := 0, 0
		r := rng.NewStream(*seed, uint64(ring))
		for i := 0; i < *couplesN; i++ {
			pair, err := randgraph.SampleCoupled(r, *n, ring, *pool, *q, x)
			if err != nil {
				return fmt.Errorf("K=%d coupling: %w", ring, err)
			}
			if pair.Coupled {
				coupled++
			}
			if pair.Binomial.IsSpanningSubgraphOf(pair.Uniform) {
				contained++
			}
		}

		// (b) The k-connectivity sandwich.
		erEst, err := montecarlo.EstimateProportion(ctx, montecarlo.Config{
			Trials: *trials, Workers: *workers, Seed: *seed + uint64(ring)*3,
		}, func(trial int, r *rng.Rand) (bool, error) {
			g, err := randgraph.ErdosRenyi(r, *n, z)
			if err != nil {
				return false, err
			}
			return graphalgo.IsKConnected(g, *k), nil
		})
		if err != nil {
			return fmt.Errorf("K=%d ER estimate: %w", ring, err)
		}
		m := core.Model{N: *n, K: ring, P: *pool, Q: *q, ChannelOn: *pOn}
		cfg := core.EstimateConfig{Trials: *trials, Workers: *workers, Seed: *seed + uint64(ring)*5}
		gEst, err := m.EstimateKConnectivity(ctx, *k, cfg)
		if err != nil {
			return fmt.Errorf("K=%d model estimate: %w", ring, err)
		}
		mdEst, err := m.EstimateMinDegreeAtLeast(ctx, *k, cfg)
		if err != nil {
			return fmt.Errorf("K=%d min degree estimate: %w", ring, err)
		}
		// Monte Carlo slack on the ER-vs-model comparison: 3σ for the
		// difference of two independent proportions, worst case p = 1/2.
		slack := 3 * math.Sqrt(2*0.25/float64(*trials))
		sandwichOK := erEst.Estimate() <= gEst.Estimate()+slack &&
			gEst.Estimate() <= mdEst.Estimate()+slack
		table.AddRow(
			fmt.Sprintf("%d", ring),
			fmt.Sprintf("%.6f", x),
			fmt.Sprintf("%.6f", z),
			fmt.Sprintf("%d/%d", coupled, *couplesN),
			fmt.Sprintf("%d/%d", contained, *couplesN),
			fmt.Sprintf("%.3f", erEst.Estimate()),
			fmt.Sprintf("%.3f", gEst.Estimate()),
			fmt.Sprintf("%.3f", mdEst.Estimate()),
			fmt.Sprintf("%v", sandwichOK),
		)
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("\nReading: containment must hold in every sampled coupling; the ER lower")
	fmt.Println("bound (with z_n strictly below t) and the min-degree upper bound must")
	fmt.Println("bracket the model's k-connectivity probability — the skeleton of the proof.")

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := table.RenderCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
