package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the migrated tool end to end on a small grid: the
// Lemma 5 coupling loop, the paired Deployer-backed sandwich sweep (sharded),
// and the pivoted table/CSV must all work from the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "couplings.csv")
	os.Args = []string{"couplings",
		"-n", "60", "-pool", "300", "-q", "1", "-k", "1",
		"-kmin", "8", "-kmax", "12", "-kstep", "4",
		"-trials", "20", "-couples", "5", "-workers", "2", "-pointworkers", "2",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(data), "\n", 2)[0]
	for _, col := range []string{"K", "x_n (66)", "z_n (58)", "P[ER(z) k-conn]", "P[G_nq k-conn]", "P[minDeg>=k]", "sandwich ok"} {
		if !strings.Contains(head, col) {
			t.Errorf("csv header %q missing column %q", head, col)
		}
	}
	if lines := strings.Count(strings.TrimSpace(string(data)), "\n"); lines != 2 {
		t.Errorf("csv has %d data rows, want 2 (K = 8, 12)", lines)
	}
}
