// Command figure1 reproduces Figure 1 of the paper (experiment E1): the
// empirical probability that G_{n,q}(n, K, P, p) is connected as a function
// of the key ring size K, for q ∈ {2, 3} and p ∈ {0.2, 0.5, 1} with
// n = 1000 and P = 10000, each point averaged over 500 independent sampled
// topologies. It also prints the eq. (9) thresholds K* next to each curve
// (both the exact and the asymptotic computation; the paper's published
// values track the asymptotic one).
//
// Output: an aligned table, a terminal ASCII rendering of the figure, and
// optional CSV (-csv) for external plotting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figure1:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 1000, "number of sensors")
		pool    = flag.Int("pool", 10000, "key pool size P")
		kMin    = flag.Int("kmin", 28, "smallest key ring size K")
		kMax    = flag.Int("kmax", 88, "largest key ring size K")
		kStep   = flag.Int("kstep", 4, "key ring size step")
		trials  = flag.Int("trials", 500, "samples per point (paper: 500)")
		workers = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		csvPath = flag.String("csv", "", "write series CSV to this path")
	)
	flag.Parse()

	type curve struct {
		q int
		p float64
	}
	curves := []curve{
		{q: 2, p: 1}, {q: 2, p: 0.5}, {q: 2, p: 0.2},
		{q: 3, p: 1}, {q: 3, p: 0.5}, {q: 3, p: 0.2},
	}

	fmt.Printf("Figure 1 reproduction: P[G_{n,q}(n=%d, K, P=%d, p) is connected] vs K\n", *n, *pool)
	fmt.Printf("%d trials/point, seed %d\n\n", *trials, *seed)

	columns := []string{"K"}
	series := make([]experiment.Series, len(curves))
	for i, c := range curves {
		series[i].Name = fmt.Sprintf("q=%d, p=%g", c.q, c.p)
		columns = append(columns, fmt.Sprintf("q=%d,p=%g", c.q, c.p))
	}
	table := experiment.NewTable(columns...)

	ctx := context.Background()
	start := time.Now()
	for k := *kMin; k <= *kMax; k += *kStep {
		row := []string{fmt.Sprintf("%d", k)}
		for ci, c := range curves {
			m := core.Model{N: *n, K: k, P: *pool, Q: c.q, ChannelOn: c.p}
			est, err := m.EstimateConnectivity(ctx, core.EstimateConfig{
				Trials:  *trials,
				Workers: *workers,
				Seed:    *seed + uint64(ci*1000+k),
			})
			if err != nil {
				return fmt.Errorf("K=%d %s: %w", k, series[ci].Name, err)
			}
			lo, hi := est.WilsonInterval(1.96)
			series[ci].AddCI(float64(k), est.Estimate(), lo, hi)
			row = append(row, fmt.Sprintf("%.3f", est.Estimate()))
		}
		table.AddRow(row...)
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, series, experiment.ChartOptions{
		Title:  fmt.Sprintf("Empirical probability of connectivity (n=%d, P=%d, %d trials)", *n, *pool, *trials),
		XLabel: "key ring size K",
		YLabel: "P[connected]",
		YMin:   0, YMax: 1,
		Width: 76, Height: 22,
	}); err != nil {
		return err
	}

	fmt.Println("\neq. (9) thresholds K* (exact | asymptotic; paper prints 35, 41, 52, 60, 67, 78):")
	for _, c := range curves {
		exact, err := core.ThresholdK(*n, *pool, c.q, c.p)
		if err != nil {
			return err
		}
		asym, err := core.ThresholdKAsymptotic(*n, *pool, c.q, c.p)
		if err != nil {
			return err
		}
		fmt.Printf("  q=%d, p=%-4g  K* = %d | %d\n", c.q, c.p, exact, asym)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := experiment.WriteSeriesCSV(f, series); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}
