// Command figure1 reproduces Figure 1 of the paper (experiment E1): the
// empirical probability that G_{n,q}(n, K, P, p) is connected as a function
// of the key ring size K, for q ∈ {2, 3} and p ∈ {0.2, 0.5, 1} with
// n = 1000 and P = 10000, each point averaged over 500 independent sampled
// topologies. It also prints the eq. (9) thresholds K* next to each curve
// (both the exact and the asymptotic computation; the paper's published
// values track the asymptotic one).
//
// Output: an aligned table, a terminal ASCII rendering of the figure, and
// optional CSV (-csv) for external plotting.
//
// The sweep runs through experiment.SweepConnectivity over the (K, q, p)
// grid with per-point deterministic seeding. Connectivity is
// union-find-answerable, so every trial runs on the streaming edge path:
// rings are assigned, the channel draw is streamed edge by edge through the
// ring intersector into a union-find, and the draw stops as soon as one
// component remains — no CSR graph, edge list or link key is ever
// materialized. Estimates are bit-identical to the previous CSR sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/cmdutil"
	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figure1:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 1000, "number of sensors")
		pool     = flag.Int("pool", 10000, "key pool size P")
		kMin     = flag.Int("kmin", 28, "smallest key ring size K")
		kMax     = flag.Int("kmax", 88, "largest key ring size K")
		kStep    = flag.Int("kstep", 4, "key ring size step")
		trials   = flag.Int("trials", 500, "samples per point (paper: 500)")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write series CSV to this path")
	)
	journal := cmdutil.RegisterJournal()
	flag.Parse()
	if err := journal.Open(); err != nil {
		return err
	}
	defer journal.Close()

	type curve struct {
		q int
		p float64
	}
	qs := []int{2, 3}
	ps := []float64{1, 0.5, 0.2}
	curves := make([]curve, 0, len(qs)*len(ps))
	for _, q := range qs {
		for _, p := range ps {
			curves = append(curves, curve{q: q, p: p})
		}
	}
	var ks []int
	for k := *kMin; k <= *kMax; k += *kStep {
		ks = append(ks, k)
	}

	fmt.Printf("Figure 1 reproduction: P[G_{n,q}(n=%d, K, P=%d, p) is connected] vs K\n", *n, *pool)
	fmt.Printf("%d trials/point, seed %d\n\n", *trials, *seed)

	ctx, stop := cmdutil.SignalContext()
	defer stop()
	start := time.Now()
	results, err := experiment.SweepConnectivity(ctx,
		experiment.Grid{Ks: ks, Qs: qs, Ps: ps},
		journal.Apply(
			experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed},
			fmt.Sprintf("figure1 n=%d pool=%d", *n, *pool)),
		func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(*pool, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{
				Sensors: *n,
				Scheme:  scheme,
				Channel: channel.OnOff{P: pt.P},
			}, nil
		})
	if err != nil {
		return journal.Hint(err)
	}
	// Pivot: one row per K, one column/series per (q, p) curve. The grid
	// enumerates (K, q, p) row-major, so curves appear in (q, p) order.
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"K"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", pt.K)}
		},
	}, experiment.ProportionMeasurements(results, 1.96,
		func(pt experiment.GridPoint) float64 { return float64(pt.K) },
		func(pt experiment.GridPoint) string { return fmt.Sprintf("q=%d, p=%g", pt.Q, pt.P) },
	))
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, presented.Series, experiment.ChartOptions{
		Title:  fmt.Sprintf("Empirical probability of connectivity (n=%d, P=%d, %d trials)", *n, *pool, *trials),
		XLabel: "key ring size K",
		YLabel: "P[connected]",
		YMin:   0, YMax: 1,
		Width: 76, Height: 22,
	}); err != nil {
		return err
	}

	fmt.Println("\neq. (9) thresholds K* (exact | asymptotic; paper prints 35, 41, 52, 60, 67, 78):")
	for _, c := range curves {
		exact, err := core.ThresholdK(*n, *pool, c.q, c.p)
		if err != nil {
			return err
		}
		asym, err := core.ThresholdKAsymptotic(*n, *pool, c.q, c.p)
		if err != nil {
			return err
		}
		fmt.Printf("  q=%d, p=%-4g  K* = %d | %d\n", c.q, c.p, exact, asym)
	}

	if *csvPath != "" {
		if err := presented.SaveSeriesCSV(*csvPath); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}
