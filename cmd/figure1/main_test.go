package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the Figure 1 tool end to end on a small grid with
// point sharding enabled: the six (q, p) curves, threshold printout, and
// series CSV must work from the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "figure1.csv")
	os.Args = []string{"figure1",
		"-n", "50", "-pool", "300",
		"-kmin", "8", "-kmax", "12", "-kstep", "4",
		"-trials", "5", "-workers", "2", "-pointworkers", "3",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, series := range []string{"q=2, p=1", "q=2, p=0.5", "q=3, p=0.2"} {
		if !strings.Contains(text, series) {
			t.Errorf("series csv missing curve %q", series)
		}
	}
}
