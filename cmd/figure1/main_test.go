package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// resetFlags gives run() a fresh global FlagSet: each invocation registers
// its flags anew, so tests can drive run() more than once per binary.
func resetFlags() {
	flag.CommandLine = flag.NewFlagSet("figure1", flag.ExitOnError)
}

// TestRunSmoke drives the Figure 1 tool end to end on a small grid with
// point sharding enabled: the six (q, p) curves, threshold printout, and
// series CSV must work from the flag surface down.
func TestRunSmoke(t *testing.T) {
	resetFlags()
	csv := filepath.Join(t.TempDir(), "figure1.csv")
	os.Args = []string{"figure1",
		"-n", "50", "-pool", "300",
		"-kmin", "8", "-kmax", "12", "-kstep", "4",
		"-trials", "5", "-workers", "2", "-pointworkers", "3",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, series := range []string{"q=2, p=1", "q=2, p=0.5", "q=3, p=0.2"} {
		if !strings.Contains(text, series) {
			t.Errorf("series csv missing curve %q", series)
		}
	}
}

// runFigure1 drives run() with the given argv tail, stdout discarded.
func runFigure1(t *testing.T, args ...string) error {
	t.Helper()
	resetFlags()
	os.Args = append([]string{"figure1"}, args...)
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()
	return run()
}

// journalCounts tallies header and point records in a checkpoint journal.
func journalCounts(t *testing.T, path string) (headers, points int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		switch {
		case bytes.Contains(line, []byte(`"header"`)):
			headers++
		case bytes.Contains(line, []byte(`"point"`)):
			points++
		}
	}
	return headers, points
}

// TestCheckpointResumeRoundTrip re-runs the same command line against one
// -checkpoint journal: the second run must resume every point from the file
// (appending a fresh header but recomputing nothing) and emit a CSV
// bit-identical to the first run's.
func TestCheckpointResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "figure1.journal")
	csv1 := filepath.Join(dir, "run1.csv")
	csv2 := filepath.Join(dir, "run2.csv")
	args := []string{
		"-n", "50", "-pool", "300",
		"-kmin", "8", "-kmax", "12", "-kstep", "4",
		"-trials", "5", "-workers", "2", "-pointworkers", "3",
		"-checkpoint", journal,
	}
	if err := runFigure1(t, append(args, "-csv", csv1)...); err != nil {
		t.Fatalf("checkpointed run failed: %v", err)
	}
	headers, points := journalCounts(t, journal)
	if headers != 1 || points == 0 {
		t.Fatalf("after run 1: %d headers, %d points; want 1 header and some points", headers, points)
	}
	if err := runFigure1(t, append(args, "-csv", csv2)...); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	headers2, points2 := journalCounts(t, journal)
	if headers2 != 2 || points2 != points {
		t.Errorf("after resume: %d headers, %d points; want 2 headers and the original %d points (nothing recomputed)",
			headers2, points2, points)
	}
	a, err := os.ReadFile(csv1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(csv2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("resumed run's CSV differs from the original run's")
	}
}
