// Command degreedist validates Lemma 9 (experiment E5): in G_{n,q} at the
// connectivity scaling, the number of nodes with a fixed degree h is
// asymptotically Poisson with mean λ_{n,h} = n·(h!)^{−1}(n·t)^h·e^{−n·t}.
// The tool samples the per-trial count of degree-h nodes, compares its mean
// to λ_{n,h}, and reports the total-variation distance between the
// empirical count distribution and Poisson(λ_{n,h}).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "degreedist:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 1000, "number of sensors")
		pool    = flag.Int("pool", 10000, "key pool size P")
		q       = flag.Int("q", 2, "required key overlap")
		pOn     = flag.Float64("p", 0.5, "channel-on probability")
		ring    = flag.Int("ring", 43, "key ring size K (pick near the connectivity threshold)")
		hMax    = flag.Int("hmax", 3, "largest fixed degree h to test")
		trials  = flag.Int("trials", 400, "sampled topologies")
		workers = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		csvPath = flag.String("csv", "", "write table CSV to this path")
	)
	flag.Parse()

	m := core.Model{N: *n, K: *ring, P: *pool, Q: *q, ChannelOn: *pOn}
	tProb, err := m.EdgeProbability()
	if err != nil {
		return err
	}
	fmt.Printf("Lemma 9 validation on %s\n", m)
	fmt.Printf("edge probability t = %.6f, n·t = %.3f, %d trials\n\n", tProb, float64(*n)*tProb, *trials)

	table := experiment.NewTable(
		"h", "lambda (Lemma 9)", "empirical mean", "empirical var", "TV distance", "max count")
	ctx := context.Background()
	start := time.Now()
	for h := 0; h <= *hMax; h++ {
		lambda, err := m.PoissonDegreeCountMean(h)
		if err != nil {
			return err
		}
		counts, err := m.DegreeCountDistribution(ctx, h, core.EstimateConfig{
			Trials:  *trials,
			Workers: *workers,
			Seed:    *seed + uint64(h*1000),
		})
		if err != nil {
			return fmt.Errorf("h=%d: %w", h, err)
		}
		var hist stats.Histogram
		var sum stats.Summary
		for _, c := range counts {
			hist.Add(c)
			sum.Add(float64(c))
		}
		empirical := hist.Normalized()
		poisson := make([]float64, len(empirical)+10)
		for i := range poisson {
			poisson[i] = stats.PoissonPMF(lambda, i)
		}
		tv := stats.TotalVariation(empirical, poisson)
		table.AddRow(
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%.4f", lambda),
			fmt.Sprintf("%.4f", sum.Mean()),
			fmt.Sprintf("%.4f", sum.Variance()),
			fmt.Sprintf("%.4f", tv),
			fmt.Sprintf("%d", int(sum.Max())),
		)
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("\nLemma 9 predicts: empirical mean ≈ empirical variance ≈ λ, small TV distance.")

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := table.RenderCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
