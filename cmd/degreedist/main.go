// Command degreedist validates Lemma 9 (experiment E5): in G_{n,q} at the
// connectivity scaling, the number of nodes with a fixed degree h is
// asymptotically Poisson with mean λ_{n,h} = n·(h!)^{−1}(n·t)^h·e^{−n·t}.
// The tool samples the per-trial count of degree-h nodes, compares its mean
// to λ_{n,h}, and reports the total-variation distance between the
// empirical count distribution and Poisson(λ_{n,h}).
//
// The fixed degrees h form the Xs axis of an experiment.Grid with per-point
// parameter-derived seeding; each trial deploys a full network through a
// reusable wsn.DeployerPool (the zero-allocation trial loop) and counts the
// degree-h nodes of the secure topology, and the results pivot into the
// comparison table through experiment.PivotSweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/stats"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "degreedist:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 1000, "number of sensors")
		pool    = flag.Int("pool", 10000, "key pool size P")
		q       = flag.Int("q", 2, "required key overlap")
		pOn     = flag.Float64("p", 0.5, "channel-on probability")
		ring    = flag.Int("ring", 43, "key ring size K (pick near the connectivity threshold)")
		hMax    = flag.Int("hmax", 3, "largest fixed degree h to test")
		trials  = flag.Int("trials", 400, "sampled topologies")
		workers = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		csvPath = flag.String("csv", "", "write table CSV to this path")
	)
	flag.Parse()

	m := core.Model{N: *n, K: *ring, P: *pool, Q: *q, ChannelOn: *pOn}
	tProb, err := m.EdgeProbability()
	if err != nil {
		return err
	}
	scheme, err := keys.NewQComposite(*pool, *ring, *q)
	if err != nil {
		return err
	}
	dp, err := wsn.NewDeployerPool(wsn.Config{
		Sensors: *n,
		Scheme:  scheme,
		Channel: channel.OnOff{P: *pOn},
	})
	if err != nil {
		return err
	}
	fmt.Printf("Lemma 9 validation on %s\n", m)
	fmt.Printf("edge probability t = %.6f, n·t = %.3f, %d trials\n\n", tProb, float64(*n)*tProb, *trials)

	// The fixed degrees h are the grid's Xs axis, so each h gets the sweep
	// seeding discipline (a seed derived from the parameters, reproducible in
	// isolation). The TV distance needs the full per-trial count distribution,
	// so each point runs montecarlo.Collect rather than a mean estimate.
	var hs []float64
	for h := 0; h <= *hMax; h++ {
		hs = append(hs, float64(h))
	}
	grid := experiment.Grid{Ks: []int{*ring}, Qs: []int{*q}, Ps: []float64{*pOn}, Xs: hs}
	cfg := experiment.SweepConfig{Trials: *trials, Workers: *workers, Seed: *seed}
	ctx := context.Background()
	start := time.Now()
	var ms []experiment.Measurement
	for _, pt := range grid.Points() {
		h := int(pt.X)
		lambda, err := m.PoissonDegreeCountMean(h)
		if err != nil {
			return err
		}
		counts, err := montecarlo.Collect(ctx, montecarlo.Config{
			Trials:  cfg.Trials,
			Workers: cfg.Workers,
			Seed:    cfg.PointSeed(pt),
		}, func(trial int, r *rng.Rand) (float64, error) {
			d := dp.Get()
			defer dp.Put(d)
			net, err := d.DeployRand(r)
			if err != nil {
				return 0, err
			}
			hist := net.FullSecureTopology().DegreeHistogram()
			if h >= len(hist) {
				return 0, nil
			}
			return float64(hist[h]), nil
		})
		if err != nil {
			return fmt.Errorf("h=%d: %w", h, err)
		}
		var hist stats.Histogram
		var sum stats.Summary
		for _, c := range counts {
			hist.Add(int(c))
			sum.Add(c)
		}
		empirical := hist.Normalized()
		poisson := make([]float64, len(empirical)+10)
		for i := range poisson {
			poisson[i] = stats.PoissonPMF(lambda, i)
		}
		tv := stats.TotalVariation(empirical, poisson)
		for _, c := range []struct {
			curve string
			y     float64
		}{
			{"lambda (Lemma 9)", lambda},
			{"empirical mean", sum.Mean()},
			{"empirical var", sum.Variance()},
			{"TV distance", tv},
			{"max count", sum.Max()},
		} {
			ms = append(ms, experiment.Measurement{
				Point: pt, Curve: c.curve, X: pt.X, Y: c.y, Lo: c.y, Hi: c.y,
			})
		}
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"h"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", int(pt.X))}
		},
		FormatCell: func(m experiment.Measurement) string {
			if m.Curve == "max count" {
				return fmt.Sprintf("%d", int(math.Round(m.Y)))
			}
			return fmt.Sprintf("%.4f", m.Y)
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("\nLemma 9 predicts: empirical mean ≈ empirical variance ≈ λ, small TV distance.")

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := presented.Table.RenderCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
