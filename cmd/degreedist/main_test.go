package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the migrated tool end to end on a small grid: the
// Deployer-backed trial loop, the PivotSweep table, and the CSV export must
// all work from the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "degreedist.csv")
	os.Args = []string{"degreedist",
		"-n", "80", "-pool", "400", "-ring", "14", "-q", "1",
		"-hmax", "1", "-trials", "25", "-workers", "2",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(string(data), "\n", 2)[0]
	for _, col := range []string{"h", "lambda (Lemma 9)", "empirical mean", "TV distance", "max count"} {
		if !strings.Contains(head, col) {
			t.Errorf("csv header %q missing column %q", head, col)
		}
	}
	if lines := strings.Count(strings.TrimSpace(string(data)), "\n"); lines != 2 {
		t.Errorf("csv has %d data rows, want 2 (h = 0, 1)", lines)
	}
}
