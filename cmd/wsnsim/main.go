// Command wsnsim deploys one secure WSN end to end — key predistribution,
// channel sampling, shared-key discovery — and reports the resulting secure
// topology: link counts, degrees, components, k-connectivity, an example
// secure path, and optional random failure injection.
//
// It is the "kick the tires" tool for the full simulator stack; the
// statistical experiments live in the other commands. The single inspected
// network deploys through the same wsn.Deployer pipeline the sweeps run on
// (byte-identical to the one-shot wsn.Deploy), and -trials N > 1 adds an
// ensemble summary — mean connectivity, k-connectivity, minimum degree and
// secure-link count over N deployments — through experiment.SweepMeanVec on
// a reusable wsn.DeployerPool, presented by the shared Measurement/
// PivotSweep presenter.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wsnsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sensors   = flag.Int("sensors", 500, "number of sensors")
		pool      = flag.Int("pool", 10000, "key pool size P")
		ring      = flag.Int("ring", 55, "key ring size K")
		q         = flag.Int("q", 2, "required key overlap")
		chanKind  = flag.String("channel", "onoff", "channel model: onoff, always, disk, disktorus")
		pOn       = flag.Float64("p", 0.5, "on/off channel probability")
		radius    = flag.Float64("radius", 0.1, "disk model radius")
		kConn     = flag.Int("k", 2, "k-connectivity level to check")
		fail      = flag.Int("fail", 0, "random sensors to fail after deployment")
		failLinks = flag.Int("faillinks", 0, "random secure links to fail after deployment")
		revoke    = flag.Int("revoke", 0, "sensors whose keys to revoke (captured-node response)")
		trials    = flag.Int("trials", 1, "deployments in the ensemble summary (1 = inspect the single network only)")
		workers   = flag.Int("workers", 0, "parallel ensemble workers (0 = all CPUs)")
		seed      = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	scheme, err := keys.NewQComposite(*pool, *ring, *q)
	if err != nil {
		return err
	}
	var ch channel.Model
	switch *chanKind {
	case "onoff":
		ch = channel.OnOff{P: *pOn}
	case "always":
		ch = channel.AlwaysOn{}
	case "disk":
		ch = channel.Disk{Radius: *radius}
	case "disktorus":
		ch = channel.Disk{Radius: *radius, Torus: true}
	default:
		return fmt.Errorf("unknown channel model %q", *chanKind)
	}

	fmt.Printf("Deploying %d sensors, %s scheme (P=%d, K=%d), %s channels, seed %d\n\n",
		*sensors, scheme.Name(), *pool, *ring, ch.Name(), *seed)
	cfg := wsn.Config{
		Sensors: *sensors,
		Scheme:  scheme,
		Channel: ch,
	}
	// The Deployer pipeline the sweeps run on; one Deploy is byte-identical
	// to the one-shot wsn.Deploy at the same seed.
	deployer, err := wsn.NewDeployer(cfg)
	if err != nil {
		return err
	}
	net, err := deployer.Deploy(*seed)
	if err != nil {
		return err
	}

	if err := printReport(net, *kConn); err != nil {
		return err
	}

	// Discovery protocol cost (radio energy proxy).
	disc, err := net.SimulateDiscovery()
	if err != nil {
		return err
	}
	fmt.Printf("discovery: %d broadcasts (%d B) + %d unicasts (%d B); mean %d B/sensor, max %d B\n\n",
		disc.Broadcasts, disc.BroadcastBytes, disc.Unicasts, disc.UnicastBytes,
		int(disc.PerSensorBytes.Mean), int(disc.PerSensorBytes.Max))

	// Theory comparison (only meaningful for the on/off model).
	if *chanKind == "onoff" {
		tProb, err := theory.EdgeProb(*pool, *ring, *q, *pOn)
		if err != nil {
			return err
		}
		pairs := float64(*sensors) * float64(*sensors-1) / 2
		fmt.Printf("theory: edge probability t = %.6f (expected links %.0f)\n",
			tProb, tProb*pairs)
		alpha, err := theory.Alpha(*sensors, tProb, *kConn)
		if err == nil {
			limit, lerr := theory.KConnProbLimit(alpha, *kConn)
			if lerr == nil {
				fmt.Printf("theory: alpha = %+.3f, asymptotic P[%d-connected] = %.4f\n\n",
					alpha, *kConn, limit)
			}
		}
	}

	// Ensemble summary: the single network above is one draw; -trials > 1
	// reports how typical it is across repeated deployments.
	if *trials > 1 {
		if err := printEnsemble(cfg, *kConn, *trials, *workers, *seed); err != nil {
			return err
		}
	}

	// Example secure path across the network.
	sub, orig, err := net.SecureTopology()
	if err != nil {
		return err
	}
	if sub.N() >= 2 && graphalgo.IsConnected(sub) {
		a, b := orig[0], orig[sub.N()-1]
		path, err := net.SecurePath(a, b)
		if err != nil {
			return err
		}
		fmt.Printf("example secure path %d → %d (%d hops): %s\n",
			a, b, len(path)-1, pathString(path))
		if len(path) >= 2 {
			if link, ok := net.Link(path[0], path[1]); ok {
				fmt.Printf("first hop shares %d keys; link key %x…\n\n",
					len(link.SharedKeys), link.Key[:8])
			}
		}
	}

	if *fail > 0 {
		fmt.Printf("failing %d random sensors…\n\n", *fail)
		r := rng.New(*seed + 1)
		if _, err := net.FailRandom(r, *fail); err != nil {
			return err
		}
		if err := printReport(net, *kConn); err != nil {
			return err
		}
	}
	if *failLinks > 0 {
		fmt.Printf("failing %d random links…\n\n", *failLinks)
		r := rng.New(*seed + 2)
		if _, err := net.FailRandomLinks(r, *failLinks); err != nil {
			return err
		}
		opConn, err := net.IsOperationallyConnected()
		if err != nil {
			return err
		}
		opEdge, err := net.IsKEdgeConnected(*kConn)
		if err != nil {
			return err
		}
		fmt.Printf("  after link failures: connected %v, %d-edge-connected %v\n\n",
			opConn, *kConn, opEdge)
	}
	if *revoke > 0 {
		fmt.Printf("revoking the key rings of sensors 0..%d (captured-node response)…\n\n", *revoke-1)
		ids := make([]int32, *revoke)
		for i := range ids {
			ids[i] = int32(i)
		}
		torn, err := net.RevokeNodeKeys(ids...)
		if err != nil {
			return err
		}
		imp, err := net.Impact()
		if err != nil {
			return err
		}
		fmt.Printf("  revoked keys       %d\n", imp.RevokedKeys)
		fmt.Printf("  links torn down    %d\n", torn)
		fmt.Printf("  effective ring     %.1f keys (was %d)\n", imp.EffectiveRingMean, *ring)
		fmt.Printf("  secure links       %d\n", imp.SecureLinks)
		fmt.Printf("  connected          %v\n", imp.Connected)
	}
	return nil
}

func printReport(net *wsn.Network, k int) error {
	rep, err := net.Snapshot()
	if err != nil {
		return err
	}
	kc, err := net.IsKConnected(k)
	if err != nil {
		return err
	}
	sub, _, err := net.SecureTopology()
	if err != nil {
		return err
	}
	lambda2 := graphalgo.AlgebraicConnectivity(sub, 300)
	table := experiment.NewTable("metric", "value")
	table.AddRow("sensors alive", fmt.Sprintf("%d / %d", rep.Alive, rep.Sensors))
	table.AddRow("channel edges", fmt.Sprintf("%d", rep.ChannelEdges))
	table.AddRow("secure links", fmt.Sprintf("%d", rep.SecureLinks))
	table.AddRow("degree", fmt.Sprintf("min %d, mean %.2f", rep.MinDegree, rep.MeanDegree))
	table.AddRow("components", fmt.Sprintf("%d (largest %d)", rep.Components, rep.LargestComp))
	table.AddRow("connected", fmt.Sprintf("%v", rep.Connected))
	table.AddRow(fmt.Sprintf("%d-connected", k), fmt.Sprintf("%v", kc))
	table.AddRow("algebraic conn.", fmt.Sprintf("%.4f (Fiedler λ₂; robustness score)", lambda2))
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// printEnsemble runs the ensemble summary: trials full deployments through a
// reusable wsn.DeployerPool via experiment.SweepMeanVec (one degenerate grid
// point, per-trial parameter-derived streams), measuring connectivity,
// k-connectivity, minimum degree and secure-link count on each deployment at
// once, presented through the shared Measurement/PivotSweep presenter.
func printEnsemble(cfg wsn.Config, k, trials, workers int, seed uint64) error {
	dp, err := wsn.NewDeployerPool(cfg)
	if err != nil {
		return err
	}
	const dims = 4
	results, err := experiment.SweepMeanVec(context.Background(), experiment.Grid{},
		experiment.SweepConfig{Trials: trials, Workers: workers, Seed: seed}, dims,
		func(pt experiment.GridPoint) (montecarlo.SampleVec, error) {
			return func(trial int, r *rng.Rand) ([]float64, error) {
				d := dp.Get()
				defer dp.Put(d)
				net, err := d.DeployRand(r)
				if err != nil {
					return nil, err
				}
				conn, err := net.IsConnected()
				if err != nil {
					return nil, err
				}
				kc, err := net.IsKConnected(k)
				if err != nil {
					return nil, err
				}
				rep, err := net.Snapshot()
				if err != nil {
					return nil, err
				}
				return []float64{b2f(conn), b2f(kc), float64(rep.MinDegree), float64(rep.SecureLinks)}, nil
			}, nil
		})
	if err != nil {
		return err
	}

	var ms []experiment.Measurement
	for dim, curve := range []string{
		"P[connected]", fmt.Sprintf("P[%d-connected]", k), "mean min degree", "mean secure links",
	} {
		ms = append(ms, experiment.MeanVecMeasurements(results, dim, 1.96,
			func(pt experiment.GridPoint) float64 { return 0 }, curve)...)
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"deployments"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", trials)}
		},
		FormatCell: func(m experiment.Measurement) string {
			if m.Lo == m.Hi {
				return fmt.Sprintf("%.3f", m.Y)
			}
			return fmt.Sprintf("%.3f ± %.3f", m.Y, m.Hi-m.Y)
		},
	}, ms)
	fmt.Printf("ensemble over %d deployments (mean ± 1.96·stderr):\n", trials)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func pathString(path []int32) string {
	parts := make([]string, len(path))
	for i, v := range path {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, " → ")
}
