package main

import (
	"flag"
	"os"
	"testing"
)

// resetFlags gives run() a fresh global FlagSet, so tests can drive the
// tool more than once per process.
func resetFlags() {
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ContinueOnError)
}

// TestRunSmoke drives the simulator tool end to end at a small scale with
// every optional stage enabled: Deployer-pipeline deployment, the tabled
// snapshot report, the DeployerPool ensemble summary, failure injection,
// link failures, and key revocation must all work from the flag surface
// down.
func TestRunSmoke(t *testing.T) {
	resetFlags()
	os.Args = []string{"wsnsim",
		"-sensors", "60", "-pool", "300", "-ring", "25", "-q", "1",
		"-channel", "onoff", "-p", "0.8", "-k", "2",
		"-trials", "8", "-workers", "2",
		"-fail", "3", "-faillinks", "2", "-revoke", "2",
		"-seed", "7",
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
}

// TestRunDiskChannel exercises the disk-model branch of the channel flag.
func TestRunDiskChannel(t *testing.T) {
	resetFlags()
	os.Args = []string{"wsnsim",
		"-sensors", "50", "-pool", "200", "-ring", "30", "-q", "1",
		"-channel", "disktorus", "-radius", "0.4", "-k", "1",
		"-seed", "3",
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
}
