// Command properties sweeps the key ring size K and charts a phase diagram
// of monotone graph properties of G_{n,q}(n, K, P, p) around the
// connectivity threshold: connectivity, 2-connectivity, minimum degree ≥ 2,
// Hamiltonicity (Pósa heuristic), plus two structural diagnostics the
// q-composite graph inherits from its intersection structure — global
// clustering coefficient (strictly positive, unlike an Erdős–Rényi graph of
// the same density) and the diameter of connected samples.
//
// The four boolean properties run as one experiment.SweepMeanVec over the
// ring-size grid: every trial deploys a full network through a reusable
// wsn.DeployerPool and evaluates all four on that single topology. The
// real-valued diagnostics replay a smaller deterministic schedule on a
// dedicated wsn.Deployer, and everything pivots into one table through
// experiment.PivotSweep.
//
// The related-work observation it illustrates (Nikoletseas et al., cited in
// Section IX): Hamiltonicity emerges essentially together with
// 2-connectivity, just after connectivity.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/stats"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "properties:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 500, "number of sensors")
		pool     = flag.Int("pool", 5000, "key pool size P")
		q        = flag.Int("q", 2, "required key overlap")
		pOn      = flag.Float64("p", 0.5, "channel-on probability")
		kMin     = flag.Int("kmin", 30, "smallest ring size K")
		kEnd     = flag.Int("kmax", 50, "largest ring size K")
		kStep    = flag.Int("kstep", 2, "ring size step")
		trials   = flag.Int("trials", 150, "samples per point")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write series CSV to this path")
	)
	flag.Parse()

	fmt.Printf("Property phase diagram of G_{n,%d}(n=%d, K, P=%d, p=%g), %d trials/point\n\n",
		*q, *n, *pool, *pOn, *trials)

	deployConfig := func(ring int) (wsn.Config, error) {
		scheme, err := keys.NewQComposite(*pool, ring, *q)
		if err != nil {
			return wsn.Config{}, err
		}
		return wsn.Config{
			Sensors: *n,
			Scheme:  scheme,
			Channel: channel.OnOff{P: *pOn},
		}, nil
	}

	var ks []int
	for ring := *kMin; ring <= *kEnd; ring += *kStep {
		ks = append(ks, ring)
	}
	names := []string{"connected", "2-connected", "min degree >= 2", "Hamiltonian (heuristic)"}
	grid := experiment.Grid{Ks: ks, Qs: []int{*q}, Ps: []float64{*pOn}}
	cfg := experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed}
	ctx := context.Background()
	start := time.Now()

	// All four boolean properties from one deployment per trial (correlated
	// estimates, fine for a phase diagram).
	results, err := experiment.SweepMeanVec(ctx, grid, cfg, len(names),
		func(pt experiment.GridPoint) (montecarlo.SampleVec, error) {
			deployCfg, err := deployConfig(pt.K)
			if err != nil {
				return nil, err
			}
			dp, err := wsn.NewDeployerPool(deployCfg)
			if err != nil {
				return nil, err
			}
			return func(trial int, r *rng.Rand) ([]float64, error) {
				d := dp.Get()
				defer dp.Put(d)
				net, err := d.DeployRand(r)
				if err != nil {
					return nil, err
				}
				g := net.FullSecureTopology()
				out := []float64{0, 0, 0, 0}
				// Connectivity queries go through the Network so they run on
				// the borrowed Deployer's reusable workspace (IsKConnected(2)
				// is the biconnectivity test behind the old one-shot calls).
				conn, err := net.IsConnected()
				if err != nil {
					return nil, err
				}
				if conn {
					out[0] = 1
				}
				biconn, err := net.IsKConnected(2)
				if err != nil {
					return nil, err
				}
				if biconn {
					out[1] = 1
				}
				if g.MinDegree() >= 2 {
					out[2] = 1
				}
				if _, ok := graphalgo.HamiltonianCycle(g, r, 12); ok {
					out[3] = 1
				}
				return out, nil
			}, nil
		})
	if err != nil {
		return err
	}

	// Real-valued diagnostics on a smaller deterministic replay through a
	// dedicated Deployer: replay trial t of point pt draws stream
	// (PointSeed(pt), t), so the schedule is reproducible per point exactly
	// like the sweeps.
	replayTrials := *trials / 5
	if replayTrials < 10 {
		replayTrials = 10
	}
	type diagRow struct {
		clust, erClust, diam, fiedler stats.Summary
	}
	diagOf := make(map[int]*diagRow, len(ks))
	for _, pt := range grid.Points() {
		deployCfg, err := deployConfig(pt.K)
		if err != nil {
			return err
		}
		d, err := wsn.NewDeployer(deployCfg)
		if err != nil {
			return err
		}
		row := &diagRow{}
		var r rng.Rand
		for trial := 0; trial < replayTrials; trial++ {
			r.ReseedStream(cfg.PointSeed(pt), uint64(trial))
			net, err := d.DeployRand(&r)
			if err != nil {
				return err
			}
			g := net.FullSecureTopology()
			row.clust.Add(graphalgo.GlobalClusteringCoefficient(g))
			er, err := randgraph.ErdosRenyi(&r, *n, g.Density())
			if err != nil {
				return err
			}
			row.erClust.Add(graphalgo.GlobalClusteringCoefficient(er))
			if graphalgo.IsConnected(g) {
				diam, _ := graphalgo.Diameter(g)
				row.diam.Add(float64(diam))
			}
			row.fiedler.Add(graphalgo.AlgebraicConnectivity(g, 300))
		}
		diagOf[pt.K] = row
	}

	// Pivot: the four property curves (these alone feed the chart) followed
	// by the diagnostics columns.
	var ms []experiment.Measurement
	xRing := func(pt experiment.GridPoint) float64 { return float64(pt.K) }
	for i, name := range names {
		ms = append(ms, experiment.MeanVecMeasurements(results, i, 0, xRing, name)...)
	}
	for _, pt := range grid.Points() {
		row := diagOf[pt.K]
		diam := math.NaN()
		if row.diam.N() > 0 {
			diam = row.diam.Mean()
		}
		for _, c := range []struct {
			curve string
			y     float64
		}{
			{"clustering", row.clust.Mean()},
			{"ER clustering", row.erClust.Mean()},
			{"diam (conn. samples)", diam},
			{"lambda2", row.fiedler.Mean()},
		} {
			ms = append(ms, experiment.Measurement{
				Point: pt, Curve: c.curve, X: float64(pt.K), Y: c.y, Lo: c.y, Hi: c.y,
			})
		}
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"K"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", pt.K)}
		},
		FormatCell: func(m experiment.Measurement) string {
			switch m.Curve {
			case "diam (conn. samples)":
				if math.IsNaN(m.Y) {
					return "-"
				}
				return fmt.Sprintf("%.1f", m.Y)
			case "clustering", "ER clustering":
				return fmt.Sprintf("%.4f", m.Y)
			default:
				return fmt.Sprintf("%.3f", m.Y)
			}
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	// The chart and CSV carry only the four property curves, picked by name
	// so reordering the measurement assembly above cannot silently swap in a
	// diagnostics column.
	propSeries := make([]experiment.Series, 0, len(names))
	for _, name := range names {
		for _, s := range presented.Series {
			if s.Name == name {
				propSeries = append(propSeries, s)
				break
			}
		}
	}
	if err := experiment.RenderChart(os.Stdout, propSeries, experiment.ChartOptions{
		Title:  "Monotone properties near the connectivity threshold",
		XLabel: "key ring size K",
		YLabel: "probability",
		YMin:   0, YMax: 1,
		Width: 76, Height: 20,
	}); err != nil {
		return err
	}
	fmt.Println("\nReading: connectivity, min-degree≥2, 2-connectivity, Hamiltonicity emerge")
	fmt.Println("in quick succession; the q-composite clustering coefficient stays well above")
	fmt.Println("the Erdős–Rényi value at matched density (the dependence the proofs fight).")

	if *csvPath != "" {
		if err := experiment.SaveSeriesCSV(*csvPath, propSeries); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
