// Command properties sweeps the key ring size K and charts a phase diagram
// of monotone graph properties of G_{n,q}(n, K, P, p) around the
// connectivity threshold: connectivity, 2-connectivity, minimum degree ≥ 2,
// Hamiltonicity (Pósa heuristic), plus two structural diagnostics the
// q-composite graph inherits from its intersection structure — global
// clustering coefficient (strictly positive, unlike an Erdős–Rényi graph of
// the same density) and the diameter of connected samples.
//
// The related-work observation it illustrates (Nikoletseas et al., cited in
// Section IX): Hamiltonicity emerges essentially together with
// 2-connectivity, just after connectivity.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "properties:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 500, "number of sensors")
		pool    = flag.Int("pool", 5000, "key pool size P")
		q       = flag.Int("q", 2, "required key overlap")
		pOn     = flag.Float64("p", 0.5, "channel-on probability")
		kMin    = flag.Int("kmin", 30, "smallest ring size K")
		kEnd    = flag.Int("kmax", 50, "largest ring size K")
		kStep   = flag.Int("kstep", 2, "ring size step")
		trials  = flag.Int("trials", 150, "samples per point")
		workers = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		csvPath = flag.String("csv", "", "write series CSV to this path")
	)
	flag.Parse()

	fmt.Printf("Property phase diagram of G_{n,%d}(n=%d, K, P=%d, p=%g), %d trials/point\n\n",
		*q, *n, *pool, *pOn, *trials)

	names := []string{"connected", "2-connected", "min degree >= 2", "Hamiltonian (heuristic)"}
	series := make([]experiment.Series, len(names))
	for i, name := range names {
		series[i].Name = name
	}
	table := experiment.NewTable("K", "conn", "2-conn", "minDeg>=2", "Hamilton",
		"clustering", "ER clustering", "diam (conn. samples)", "lambda2")
	ctx := context.Background()
	start := time.Now()
	for ring := *kMin; ring <= *kEnd; ring += *kStep {
		m := core.Model{N: *n, K: ring, P: *pool, Q: *q, ChannelOn: *pOn}
		var (
			hits      [4]int
			clustSum  stats.Summary
			diamSum   stats.Summary
			erClust   stats.Summary
			fiedler   stats.Summary
			completed int
		)
		// One parallel pass per trial evaluating the boolean properties on
		// the same sample (correlated estimates, fine for a phase diagram);
		// the trial result is a bitmask.
		res, err := montecarlo.Collect(ctx, montecarlo.Config{
			Trials: *trials, Workers: *workers, Seed: *seed + uint64(ring),
		}, func(trial int, r *rng.Rand) (float64, error) {
			s, err := randgraph.NewQSampler(*n, ring, *pool, *q)
			if err != nil {
				return 0, err
			}
			g, err := s.SampleComposite(r, *pOn)
			if err != nil {
				return 0, err
			}
			bits := 0
			if graphalgo.IsConnected(g) {
				bits |= 1
			}
			if graphalgo.IsBiconnected(g) {
				bits |= 2
			}
			if g.MinDegree() >= 2 {
				bits |= 4
			}
			if _, ok := graphalgo.HamiltonianCycle(g, r, 12); ok {
				bits |= 8
			}
			return float64(bits), nil
		})
		if err != nil {
			return fmt.Errorf("K=%d: %w", ring, err)
		}
		for _, enc := range res {
			completed++
			bits := int(enc)
			for b := 0; b < 4; b++ {
				if bits&(1<<b) != 0 {
					hits[b]++
				}
			}
		}
		// Real-valued diagnostics on a smaller deterministic replay.
		replayTrials := *trials / 5
		if replayTrials < 10 {
			replayTrials = 10
		}
		for trial := 0; trial < replayTrials; trial++ {
			r := rng.NewStream(*seed+uint64(ring), uint64(trial))
			s, err := randgraph.NewQSampler(*n, ring, *pool, *q)
			if err != nil {
				return err
			}
			g, err := s.SampleComposite(r, *pOn)
			if err != nil {
				return err
			}
			clustSum.Add(graphalgo.GlobalClusteringCoefficient(g))
			er, err := randgraph.ErdosRenyi(r, *n, g.Density())
			if err != nil {
				return err
			}
			erClust.Add(graphalgo.GlobalClusteringCoefficient(er))
			if graphalgo.IsConnected(g) {
				d, _ := graphalgo.Diameter(g)
				diamSum.Add(float64(d))
			}
			fiedler.Add(graphalgo.AlgebraicConnectivity(g, 300))
		}
		row := []string{fmt.Sprintf("%d", ring)}
		for i := range names {
			p := float64(hits[i]) / float64(completed)
			series[i].Add(float64(ring), p)
			row = append(row, fmt.Sprintf("%.3f", p))
		}
		diamStr := "-"
		if diamSum.N() > 0 {
			diamStr = fmt.Sprintf("%.1f", diamSum.Mean())
		}
		row = append(row,
			fmt.Sprintf("%.4f", clustSum.Mean()),
			fmt.Sprintf("%.4f", erClust.Mean()),
			diamStr,
			fmt.Sprintf("%.3f", fiedler.Mean()))
		table.AddRow(row...)
		_ = m
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, series, experiment.ChartOptions{
		Title:  "Monotone properties near the connectivity threshold",
		XLabel: "key ring size K",
		YLabel: "probability",
		YMin:   0, YMax: 1,
		Width: 76, Height: 20,
	}); err != nil {
		return err
	}
	fmt.Println("\nReading: connectivity, min-degree≥2, 2-connectivity, Hamiltonicity emerge")
	fmt.Println("in quick succession; the q-composite clustering coefficient stays well above")
	fmt.Println("the Erdős–Rényi value at matched density (the dependence the proofs fight).")

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := experiment.WriteSeriesCSV(f, series); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
