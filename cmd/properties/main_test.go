package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the migrated tool end to end on a small grid: the
// Deployer-backed property sweep (sharded), the diagnostics replay, and the
// series CSV must all work from the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "properties.csv")
	os.Args = []string{"properties",
		"-n", "60", "-pool", "300", "-q", "1",
		"-kmin", "8", "-kmax", "12", "-kstep", "4",
		"-trials", "15", "-workers", "2", "-pointworkers", "2",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, series := range []string{"connected", "2-connected", "min degree >= 2", "Hamiltonian (heuristic)"} {
		if !strings.Contains(text, series) {
			t.Errorf("series csv missing curve %q", series)
		}
	}
	// 4 property curves × 2 ring sizes + header.
	if lines := strings.Count(strings.TrimSpace(text), "\n"); lines != 8 {
		t.Errorf("csv has %d data rows, want 8", lines)
	}
}
