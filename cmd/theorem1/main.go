// Command theorem1 validates the asymptotically exact probability of
// Theorem 1 (experiment E3): for k = 1, 2, 3 it sweeps the key ring size K
// and compares the empirical probability that G_{n,q}(n, K, P, p) is
// k-connected against the closed form exp(−e^{−α_n}/(k−1)!) of eq. (7),
// with α_n computed from the exact edge probability via eq. (6).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "theorem1:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n       = flag.Int("n", 1000, "number of sensors")
		pool    = flag.Int("pool", 10000, "key pool size P")
		q       = flag.Int("q", 2, "required key overlap")
		pOn     = flag.Float64("p", 0.5, "channel-on probability")
		kMax    = flag.Int("kconn", 3, "largest connectivity level k to test")
		kMin    = flag.Int("kmin", 36, "smallest ring size K")
		kEnd    = flag.Int("kmax", 60, "largest ring size K")
		kStep   = flag.Int("kstep", 2, "ring size step")
		trials  = flag.Int("trials", 300, "samples per point")
		workers = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		csvPath = flag.String("csv", "", "write series CSV to this path")
	)
	flag.Parse()

	fmt.Printf("Theorem 1 validation: empirical vs asymptotic P[k-connected]\n")
	fmt.Printf("n=%d, P=%d, q=%d, p=%g, %d trials/point\n\n", *n, *pool, *q, *pOn, *trials)

	ctx := context.Background()
	var series []experiment.Series
	table := experiment.NewTable("K", "k", "alpha", "empirical", "CI low", "CI high", "theory (7)", "|diff|")
	start := time.Now()
	for k := 1; k <= *kMax; k++ {
		emp := experiment.Series{Name: fmt.Sprintf("empirical k=%d", k)}
		thr := experiment.Series{Name: fmt.Sprintf("theory k=%d", k)}
		for ring := *kMin; ring <= *kEnd; ring += *kStep {
			m := core.Model{N: *n, K: ring, P: *pool, Q: *q, ChannelOn: *pOn}
			alpha, err := m.Alpha(k)
			if err != nil {
				return err
			}
			want, err := m.TheoreticalKConnProb(k)
			if err != nil {
				return err
			}
			est, err := m.EstimateKConnectivity(ctx, k, core.EstimateConfig{
				Trials:  *trials,
				Workers: *workers,
				Seed:    *seed + uint64(k*10000+ring),
			})
			if err != nil {
				return fmt.Errorf("K=%d k=%d: %w", ring, k, err)
			}
			lo, hi := est.WilsonInterval(1.96)
			emp.AddCI(float64(ring), est.Estimate(), lo, hi)
			thr.Add(float64(ring), want)
			table.AddRow(
				fmt.Sprintf("%d", ring),
				fmt.Sprintf("%d", k),
				fmt.Sprintf("%+.3f", alpha),
				fmt.Sprintf("%.3f", est.Estimate()),
				fmt.Sprintf("%.3f", lo),
				fmt.Sprintf("%.3f", hi),
				fmt.Sprintf("%.3f", want),
				fmt.Sprintf("%.3f", abs(est.Estimate()-want)),
			)
		}
		series = append(series, emp, thr)
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, series, experiment.ChartOptions{
		Title:  "Theorem 1: empirical (markers per k) vs theory",
		XLabel: "key ring size K",
		YLabel: "P[k-connected]",
		YMin:   0, YMax: 1,
		Width: 76, Height: 22,
	}); err != nil {
		return err
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("create csv: %w", err)
		}
		defer f.Close()
		if err := experiment.WriteSeriesCSV(f, series); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
