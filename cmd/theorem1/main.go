// Command theorem1 validates the asymptotically exact probability of
// Theorem 1 (experiment E3): for k = 1 … kconn it sweeps the key ring size K
// and compares the empirical probability that G_{n,q}(n, K, P, p) is
// k-connected against the closed form exp(−e^{−α_n}/(k−1)!) of eq. (7),
// with α_n computed from the exact edge probability via eq. (6).
//
// The sweep runs through experiment.SweepKConnectivity over the (K × k)
// grid — the Xs axis carries the connectivity levels — with per-point
// deterministic seeding; each trial deploys a full network through a
// reusable wsn.DeployerPool (zero steady-state allocation: channel sampling,
// CSR construction and the k-connectivity test all run on deployer-owned
// scratch). With -pointworkers > 0 the grid points themselves shard across
// workers, bit-identically to the sequential run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/cmdutil"
	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "theorem1:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 1000, "number of sensors")
		pool     = flag.Int("pool", 10000, "key pool size P")
		q        = flag.Int("q", 2, "required key overlap")
		pOn      = flag.Float64("p", 0.5, "channel-on probability")
		kMax     = flag.Int("kconn", 3, "largest connectivity level k to test")
		kMin     = flag.Int("kmin", 36, "smallest ring size K")
		kEnd     = flag.Int("kmax", 60, "largest ring size K")
		kStep    = flag.Int("kstep", 2, "ring size step")
		trials   = flag.Int("trials", 300, "samples per point")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write series CSV to this path")
	)
	journal := cmdutil.RegisterJournal()
	flag.Parse()
	if err := journal.Open(); err != nil {
		return err
	}
	defer journal.Close()

	var ks []int
	for ring := *kMin; ring <= *kEnd; ring += *kStep {
		ks = append(ks, ring)
	}

	fmt.Printf("Theorem 1 validation: empirical vs asymptotic P[k-connected]\n")
	fmt.Printf("n=%d, P=%d, q=%d, p=%g, %d trials/point\n\n", *n, *pool, *q, *pOn, *trials)

	grid := experiment.Grid{Ks: ks, Qs: []int{*q}, Ps: []float64{*pOn}, Xs: experiment.KLevels(*kMax)}
	ctx, stop := cmdutil.SignalContext()
	defer stop()
	start := time.Now()
	results, err := experiment.SweepKConnectivity(ctx, grid,
		journal.Apply(
			experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed},
			fmt.Sprintf("theorem1 n=%d pool=%d", *n, *pool)),
		func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(*pool, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{
				Sensors: *n,
				Scheme:  scheme,
				Channel: channel.OnOff{P: pt.P},
			}, nil
		})
	if err != nil {
		return journal.Hint(err)
	}

	// Empirical curves (Wilson CI) plus the eq. (7) theory overlay as extra
	// measurement curves, pivoted into one K-rowed table.
	ms := experiment.KConnMeasurements(results, 1.96)
	for _, pt := range grid.Points() {
		m := core.Model{N: *n, K: pt.K, P: *pool, Q: pt.Q, ChannelOn: pt.P}
		want, err := m.TheoreticalKConnProb(int(pt.X))
		if err != nil {
			return err
		}
		ms = append(ms, experiment.Measurement{
			Point: pt,
			Curve: fmt.Sprintf("theory k=%d", int(pt.X)),
			X:     float64(pt.K),
			Y:     want, Lo: want, Hi: want,
		})
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"K"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", pt.K)}
		},
		FormatCell: func(m experiment.Measurement) string {
			if m.Lo == m.Hi {
				return fmt.Sprintf("%.3f", m.Y)
			}
			return fmt.Sprintf("%.3f [%.3f,%.3f]", m.Y, m.Lo, m.Hi)
		},
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout, presented.Series, experiment.ChartOptions{
		Title:  "Theorem 1: empirical (markers per k) vs theory",
		XLabel: "key ring size K",
		YLabel: "P[k-connected]",
		YMin:   0, YMax: 1,
		Width: 76, Height: 22,
	}); err != nil {
		return err
	}

	if *csvPath != "" {
		if err := presented.SaveSeriesCSV(*csvPath); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
	return nil
}
