package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runTheorem1 resets the flag surface and drives run() with the given argv
// tail, stdout discarded.
func runTheorem1(t *testing.T, args ...string) error {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet("theorem1", flag.ExitOnError)
	os.Args = append([]string{"theorem1"}, args...)
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()
	return run()
}

// TestRunSmoke drives the tool end to end on a small grid through the
// SweepKConnectivity path with point sharding enabled: the (K × k) grid,
// theory overlay, and series CSV must work from the flag surface down.
func TestRunSmoke(t *testing.T) {
	flag.CommandLine = flag.NewFlagSet("theorem1", flag.ExitOnError)
	csv := filepath.Join(t.TempDir(), "theorem1.csv")
	os.Args = []string{"theorem1",
		"-n", "60", "-pool", "300", "-q", "1", "-kconn", "2",
		"-kmin", "8", "-kmax", "12", "-kstep", "4",
		"-trials", "15", "-workers", "2", "-pointworkers", "3",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, series := range []string{"empirical k=1", "empirical k=2", "theory k=1", "theory k=2"} {
		if !strings.Contains(text, series) {
			t.Errorf("series csv missing curve %q", series)
		}
	}
}

// TestCheckpointResumeRoundTrip re-runs the k-connectivity sweep against one
// -checkpoint journal; the resumed run recomputes nothing and reproduces the
// CSV bit for bit.
func TestCheckpointResumeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "theorem1.journal")
	csv1 := filepath.Join(dir, "run1.csv")
	csv2 := filepath.Join(dir, "run2.csv")
	args := []string{
		"-n", "60", "-pool", "300", "-q", "1", "-kconn", "2",
		"-kmin", "8", "-kmax", "12", "-kstep", "4",
		"-trials", "10", "-workers", "2", "-pointworkers", "2",
		"-checkpoint", journal,
	}
	if err := runTheorem1(t, append(args, "-csv", csv1)...); err != nil {
		t.Fatalf("checkpointed run failed: %v", err)
	}
	first, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := runTheorem1(t, append(args, "-csv", csv2)...); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	second, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	appended := second[len(first):]
	if n := bytes.Count(appended, []byte(`"point"`)); n != 0 {
		t.Errorf("resume recomputed %d points, want 0", n)
	}
	a, _ := os.ReadFile(csv1)
	b, _ := os.ReadFile(csv2)
	if !bytes.Equal(a, b) {
		t.Error("resumed run's CSV differs from the original run's")
	}
}
