package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the tool end to end on a small grid through the
// SweepKConnectivity path with point sharding enabled: the (K × k) grid,
// theory overlay, and series CSV must work from the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "theorem1.csv")
	os.Args = []string{"theorem1",
		"-n", "60", "-pool", "300", "-q", "1", "-kconn", "2",
		"-kmin", "8", "-kmax", "12", "-kstep", "4",
		"-trials", "15", "-workers", "2", "-pointworkers", "3",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, series := range []string{"empirical k=1", "empirical k=2", "theory k=1", "theory k=2"} {
		if !strings.Contains(text, series) {
			t.Errorf("series csv missing curve %q", series)
		}
	}
}
