package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the giant-component tool end to end at a small scale:
// the degree-targeted ring schedule, the paired two-statistic sweep
// (sharded), and the series CSV must work from the flag surface down.
func TestRunSmoke(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "giant.csv")
	os.Args = []string{"giant",
		"-n", "60", "-pool", "600", "-q", "1", "-p", "0.9",
		"-trials", "6", "-workers", "2", "-pointworkers", "2",
		"-csv", csv,
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	stdout := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = stdout }()

	if err := run(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.TrimSpace(string(data))) == 0 {
		t.Error("series csv is empty")
	}
}
