// Command giant probes the giant-component phase transition of the secure
// WSN topology (experiment E11; Bloznelis–Jaworski–Rybarczyk, cited as [21]
// in the paper's related work): a linear-size connected component emerges
// once the secure-link probability t exceeds 1/n (mean degree 1), far below
// the ln n / n full-connectivity threshold of eq. (9).
//
// The tool sweeps the key ring size through mean degrees ≈ 0.2 … 4 and
// reports the largest-component fraction, its giant/subcritical shape, and
// the fraction of isolated nodes against the e^{−deg} prediction.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "giant:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 2000, "number of sensors")
		pool     = flag.Int("pool", 20000, "key pool size P")
		q        = flag.Int("q", 2, "required key overlap")
		pOn      = flag.Float64("p", 0.5, "channel-on probability")
		trials   = flag.Int("trials", 100, "samples per point")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
		pWorkers = flag.Int("pointworkers", 0, "grid-point shards (0 = sequential points; results identical either way)")
		seed     = flag.Uint64("seed", 1, "base RNG seed")
		csvPath  = flag.String("csv", "", "write series CSV to this path")
	)
	flag.Parse()

	fmt.Printf("Giant component emergence in G_{n,%d}(n=%d, K, P=%d, p=%g)\n", *q, *n, *pool, *pOn)
	fmt.Printf("critical point: mean degree n·t = 1 (t = 1/n), %d trials/point\n\n", *trials)

	// Ring sizes giving mean degree ≈ 0.2 … 4.
	var rings []int
	for _, deg := range []float64{0.2, 0.5, 0.8, 1.0, 1.2, 1.5, 2, 3, 4} {
		target := deg / float64(*n)
		ring, err := theory.RingSizeForEdgeProb(*pool, *q, *pOn, target)
		if err != nil {
			return fmt.Errorf("ring for degree %v: %w", deg, err)
		}
		if len(rings) == 0 || ring != rings[len(rings)-1] {
			rings = append(rings, ring)
		}
	}

	ctx := context.Background()
	start := time.Now()

	// One sweep over the K axis measures both statistics on each deployed
	// topology, so no network is ever sampled twice. Giant and isolated
	// fractions are union-find-answerable, so every trial runs on the
	// streaming edge path (no CSR graph is ever built); the per-trial
	// observations equal the old LargestComponentSize/DegreeHistogram
	// measurements bit for bit.
	grid := experiment.Grid{Ks: rings, Qs: []int{*q}, Ps: []float64{*pOn}}
	cfg := experiment.SweepConfig{Trials: *trials, Workers: *workers, PointWorkers: *pWorkers, Seed: *seed}
	results, err := experiment.SweepConnStats(ctx, grid, cfg,
		[]experiment.ConnStat{experiment.ConnStatGiantFraction, experiment.ConnStatIsolatedFraction},
		func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(*pool, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{
				Sensors: *n,
				Scheme:  scheme,
				Channel: channel.OnOff{P: pt.P},
			}, nil
		})
	if err != nil {
		return err
	}
	// Mean secure degree n·t per ring size — both the series' x axis and a
	// leading table column.
	degOf := make(map[int]float64, len(rings))
	for _, ring := range rings {
		m := core.Model{N: *n, K: ring, P: *pool, Q: *q, ChannelOn: *pOn}
		tProb, err := m.EdgeProbability()
		if err != nil {
			return err
		}
		degOf[ring] = float64(*n) * tProb
	}
	xDeg := func(pt experiment.GridPoint) float64 { return degOf[pt.K] }
	// Two measured curves from the paired SampleVec components, plus the
	// e^{-deg} isolated-node prediction as a third (theory-only) curve.
	ms := experiment.MeanVecMeasurements(results, 0, 0, xDeg, "largest component fraction")
	ms = append(ms, experiment.MeanVecMeasurements(results, 1, 0, xDeg, "isolated fraction")...)
	for _, res := range results {
		deg := degOf[res.Point.K]
		pred := math.Exp(-deg)
		ms = append(ms, experiment.Measurement{
			Point: res.Point, Curve: "e^{-deg} (isolated prediction)",
			X: deg, Y: pred, Lo: pred, Hi: pred,
		})
	}
	presented := experiment.PivotSweep(experiment.PivotSpec{
		RowHeaders: []string{"K", "mean degree n·t"},
		RowCells: func(pt experiment.GridPoint) []string {
			return []string{fmt.Sprintf("%d", pt.K), fmt.Sprintf("%.2f", degOf[pt.K])}
		},
		FormatCell: func(m experiment.Measurement) string { return fmt.Sprintf("%.4f", m.Y) },
	}, ms)
	if err := presented.Table.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nelapsed: %v\n\n", time.Since(start).Round(time.Millisecond))

	if err := experiment.RenderChart(os.Stdout,
		presented.Series, experiment.ChartOptions{
			Title:  "Giant component and isolated nodes vs mean secure degree",
			XLabel: "mean degree n·t",
			YLabel: "fraction of n",
			YMin:   0, YMax: 1,
			Width: 72, Height: 18,
		}); err != nil {
		return err
	}
	fmt.Println("\nReading: the largest-component fraction lifts off at mean degree ≈ 1")
	fmt.Println("(the [21] threshold s > 1/n at p·s = t), while full connectivity waits for")
	fmt.Println("mean degree ≈ ln n — the gap the paper's eq. (9) rule bridges.")

	if *csvPath != "" {
		if err := presented.SaveSeriesCSV(*csvPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
