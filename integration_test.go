// End-to-end integration tests: the full pipeline from key predistribution
// through channel sampling to k-connectivity, validated against the paper's
// theory at reduced-but-honest scales. These complement the per-package unit
// tests: everything here crosses at least three packages.
package qcomposite_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"github.com/secure-wsn/qcomposite"
	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/core"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/graph"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// TestFigure1MiniSweep reproduces Figure 1's qualitative content at reduced
// scale: a sharp 0 → 1 connectivity threshold in K, positioned where the
// theory puts it, with larger p shifting the curve left.
func TestFigure1MiniSweep(t *testing.T) {
	const (
		n      = 400
		pool   = 4000
		q      = 2
		trials = 60
	)
	ctx := context.Background()
	cross := map[float64]int{} // channel p → first K with empirical ≥ 0.5
	for _, p := range []float64{0.5, 1.0} {
		prev := 0.0
		for K := 16; K <= 60; K += 2 {
			m := qcomposite.Model{N: n, K: K, P: pool, Q: q, ChannelOn: p}
			est, err := m.EstimateConnectivity(ctx, qcomposite.EstimateConfig{
				Trials: trials,
				Seed:   uint64(K),
			})
			if err != nil {
				t.Fatal(err)
			}
			cur := est.Estimate()
			// Allow small Monte Carlo wiggle but demand broad monotonicity.
			if cur < prev-0.25 {
				t.Errorf("p=%g: connectivity dropped sharply at K=%d (%.2f -> %.2f)", p, K, prev, cur)
			}
			if cross[p] == 0 && cur >= 0.5 {
				cross[p] = K
			}
			prev = cur
		}
		if prev < 0.9 {
			t.Errorf("p=%g: curve never saturated (final %.2f)", p, prev)
		}
		if cross[p] == 0 {
			t.Fatalf("p=%g: curve never crossed 0.5", p)
		}
		// The empirical 0.5-crossing must be near the theoretical one: the K
		// where Theorem 1 gives 0.5.
		wantK := 0
		for K := 16; K <= 60; K++ {
			m := qcomposite.Model{N: n, K: K, P: pool, Q: q, ChannelOn: p}
			tp, err := m.TheoreticalKConnProb(1)
			if err != nil {
				t.Fatal(err)
			}
			if tp >= 0.5 {
				wantK = K
				break
			}
		}
		if d := cross[p] - wantK; d < -4 || d > 4 {
			t.Errorf("p=%g: empirical 0.5-crossing K=%d vs theoretical K=%d", p, cross[p], wantK)
		}
	}
	// Better channels need fewer keys.
	if cross[1.0] >= cross[0.5] {
		t.Errorf("crossing for p=1 (K=%d) not left of p=0.5 (K=%d)", cross[1.0], cross[0.5])
	}
}

// TestWSNSimulatorMatchesCoreSampler checks that the full simulator
// (keys.Assign + channel.Sample + discovery) and the fast fused sampler
// produce topologies with matching edge statistics — two independent
// implementations of G_{n,q}.
func TestWSNSimulatorMatchesCoreSampler(t *testing.T) {
	const (
		n      = 150
		pool   = 1000
		ring   = 25
		q      = 2
		pOn    = 0.6
		trials = 50
	)
	scheme, err := keys.NewQComposite(pool, ring, q)
	if err != nil {
		t.Fatal(err)
	}
	simEdges := 0
	for seed := uint64(0); seed < trials; seed++ {
		net, err := wsn.Deploy(wsn.Config{
			Sensors: n, Scheme: scheme, Channel: channel.OnOff{P: pOn}, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		simEdges += net.FullSecureTopology().M()
	}
	m := core.Model{N: n, K: ring, P: pool, Q: q, ChannelOn: pOn}
	r := rng.New(99)
	coreEdges := 0
	for i := 0; i < trials; i++ {
		g, err := m.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		coreEdges += g.M()
	}
	tProb, err := m.EdgeProbability()
	if err != nil {
		t.Fatal(err)
	}
	pairs := float64(n*(n-1)) / 2
	wantMean := tProb * pairs
	simMean := float64(simEdges) / trials
	coreMean := float64(coreEdges) / trials
	if math.Abs(simMean-wantMean) > 0.1*wantMean {
		t.Errorf("simulator mean edges %.1f vs theory %.1f", simMean, wantMean)
	}
	if math.Abs(coreMean-wantMean) > 0.1*wantMean {
		t.Errorf("core sampler mean edges %.1f vs theory %.1f", coreMean, wantMean)
	}
}

// TestDesignedNetworkSurvivesFailures closes the loop on the design rule:
// dimension a network for 3-connectivity at 99%, deploy it, kill 2 random
// sensors, and verify it stays connected in (nearly) every trial.
func TestDesignedNetworkSurvivesFailures(t *testing.T) {
	const (
		n      = 500
		pool   = 5000
		q      = 2
		pOn    = 0.7
		trials = 25
	)
	ring, err := qcomposite.DesignK(n, pool, q, pOn, 3, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := keys.NewQComposite(pool, ring, q)
	if err != nil {
		t.Fatal(err)
	}
	survived := 0
	for seed := uint64(0); seed < trials; seed++ {
		net, err := wsn.Deploy(wsn.Config{
			Sensors: n, Scheme: scheme, Channel: channel.OnOff{P: pOn}, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.FailRandom(rng.NewStream(7, seed), 2); err != nil {
			t.Fatal(err)
		}
		ok, err := net.IsConnected()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			survived++
		}
	}
	// 99% design target, finite-n slack: demand ≥ 80% survival.
	if survived < trials*8/10 {
		t.Errorf("designed network survived only %d/%d double-failure trials", survived, trials)
	}
}

// TestKStarBracketsPaper pins E2 at the integration level through the
// public API.
func TestKStarBracketsPaper(t *testing.T) {
	paper := []struct {
		q     int
		p     float64
		value int
	}{
		{q: 2, p: 1, value: 35}, {q: 2, p: 0.5, value: 41}, {q: 2, p: 0.2, value: 52},
		{q: 3, p: 1, value: 60}, {q: 3, p: 0.5, value: 67}, {q: 3, p: 0.2, value: 78},
	}
	for _, c := range paper {
		exact, err := qcomposite.ThresholdK(1000, 10000, c.q, c.p)
		if err != nil {
			t.Fatal(err)
		}
		asym, err := qcomposite.ThresholdKAsymptotic(1000, 10000, c.q, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if c.value < asym || c.value > exact {
			t.Errorf("paper K*=%d outside [asymptotic %d, exact %d] for q=%d p=%g",
				c.value, asym, exact, c.q, c.p)
		}
	}
}

// TestCouplingChainEndToEnd exercises the paper's proof machinery: the
// Lemma 5 coupling produces H_q ⊑ G_q, and intersecting both with the same
// channel graph preserves containment — the monotonicity Lemmas 3–6 rely on.
func TestCouplingChainEndToEnd(t *testing.T) {
	const (
		n    = 120
		pool = 2000
		ring = 40
		q    = 2
	)
	r := rng.New(11)
	x := theory.CouplingX(n, pool, ring)
	if x <= 0 {
		t.Fatal("coupling x out of regime for the chosen parameters")
	}
	pair, err := randgraph.SampleCoupled(r, n, ring, pool, q, x)
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Binomial.IsSpanningSubgraphOf(pair.Uniform) {
		t.Fatal("H_q not contained in G_q")
	}
	er, err := randgraph.ErdosRenyi(r, n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	interH, err := graph.Intersect(pair.Binomial, er)
	if err != nil {
		t.Fatal(err)
	}
	interG, err := graph.Intersect(pair.Uniform, er)
	if err != nil {
		t.Fatal(err)
	}
	if !interH.IsSpanningSubgraphOf(interG) {
		t.Error("intersection with channels broke the containment")
	}
	// k-connectivity is monotone: if the sub graph has it, the super must.
	for k := 1; k <= 2; k++ {
		if graphalgo.IsKConnected(interH, k) && !graphalgo.IsKConnected(interG, k) {
			t.Errorf("monotonicity violated at k=%d", k)
		}
	}
}

// TestAttackDoesNotAffectConnectivityState ensures the adversary model is
// side-effect free on the network (eavesdropping, not destruction).
func TestAttackDoesNotAffectConnectivityState(t *testing.T) {
	scheme, err := keys.NewQComposite(1000, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := wsn.Deploy(wsn.Config{
		Sensors: 200, Scheme: scheme, Channel: channel.OnOff{P: 0.8}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	before, err := net.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adversary.CaptureRandom(net, rng.New(4), 50); err != nil {
		t.Fatal(err)
	}
	after, err := net.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("capture mutated the network: %+v vs %+v", before, after)
	}
}

// TestSweepDeployerPipeline exercises the full zero-waste pipeline the cmd
// tools run on — experiment.SweepProportion fanning a (K, p) grid across the
// Monte Carlo engine, each trial deploying through a shared wsn.DeployerPool
// — and checks determinism (bit-identical repeat) plus the physics: the
// connectivity probability must be monotone in both K and p on average.
func TestSweepDeployerPipeline(t *testing.T) {
	const (
		n    = 200
		pool = 2000
		q    = 2
	)
	grid := experiment.Grid{Ks: []int{20, 30, 40}, Qs: []int{q}, Ps: []float64{0.4, 0.9}}
	cfg := experiment.SweepConfig{Trials: 40, Seed: 9}
	run := func() []experiment.ProportionResult {
		res, err := experiment.SweepProportion(context.Background(), grid, cfg,
			func(pt experiment.GridPoint) (montecarlo.Trial, error) {
				scheme, err := keys.NewQComposite(pool, pt.K, pt.Q)
				if err != nil {
					return nil, err
				}
				dp, err := wsn.NewDeployerPool(wsn.Config{
					Sensors: n, Scheme: scheme, Channel: channel.OnOff{P: pt.P},
				})
				if err != nil {
					return nil, err
				}
				return func(trial int, r *rng.Rand) (bool, error) {
					d := dp.Get()
					defer dp.Put(d)
					net, err := d.DeployRand(r)
					if err != nil {
						return false, err
					}
					return net.IsConnected()
				}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a) != grid.Len() {
		t.Fatalf("%d results, want %d", len(a), grid.Len())
	}
	byPoint := map[[2]interface{}]float64{}
	for i := range a {
		if a[i].Value != b[i].Value {
			t.Errorf("point %d not reproducible across sweep runs", i)
		}
		byPoint[[2]interface{}{a[i].Point.K, a[i].Point.P}] = a[i].Value.Estimate()
	}
	// Monotone in K at fixed p, and in p at fixed K (allowing MC wiggle).
	for _, p := range grid.Ps {
		if byPoint[[2]interface{}{20, p}] > byPoint[[2]interface{}{40, p}]+0.15 {
			t.Errorf("p=%g: connectivity not increasing in K", p)
		}
	}
	for _, K := range grid.Ks {
		if byPoint[[2]interface{}{K, 0.9}]+0.15 < byPoint[[2]interface{}{K, 0.4}] {
			t.Errorf("K=%d: connectivity decreasing in p", K)
		}
	}
}
