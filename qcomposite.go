// Package qcomposite analyses and simulates the secure connectivity of
// wireless sensor networks that use q-composite key predistribution over
// unreliable (on/off) channels, reproducing
//
//	Jun Zhao, "Secure connectivity of wireless sensor networks under key
//	predistribution with on/off channels", ICDCS 2017.
//
// The network topology is the random graph
//
//	G_{n,q}(n, K, P, p) = G_q(n, K, P) ∩ G(n, p)
//
// where G_q is the uniform q-intersection graph of the key scheme (each of
// n sensors holds K keys uniformly sampled from a pool of P; an edge needs
// ≥ q shared keys) and G(n, p) is the Erdős–Rényi graph of independent
// on/off channels.
//
// This root package re-exports the paper-facing façade: the Model type with
// exact link probabilities (eqs. (3)–(5)), Theorem 1's asymptotic
// k-connectivity probability (eqs. (6)–(8)), Monte Carlo estimation, and
// the design rules (eq. (9) threshold K*, minimum ring size for a target
// probability). The full substrate — graph algorithms, random-graph
// samplers, the WSN simulator, channel models, and the node-capture
// adversary — lives under internal/ and is exercised by the executables in
// cmd/ and the runnable walkthroughs in examples/.
package qcomposite

import (
	"github.com/secure-wsn/qcomposite/internal/core"
)

// Model parameterises the secure WSN graph G_{n,q}(n, K, P, p).
// See core.Model for the full method set: probabilities, estimation,
// sampling.
type Model = core.Model

// EstimateConfig controls Monte Carlo estimation on a Model.
type EstimateConfig = core.EstimateConfig

// ThresholdK returns the paper's eq. (9) design threshold: the minimum ring
// size K* with t(K*, P, q, p) > ln n / n, using the exact edge probability.
func ThresholdK(n, pool, q int, pOn float64) (int, error) {
	return core.ThresholdK(n, pool, q, pOn)
}

// ThresholdKAsymptotic is ThresholdK computed with the Lemma 2 asymptotic
// for s — the variant matching the paper's published values.
func ThresholdKAsymptotic(n, pool, q int, pOn float64) (int, error) {
	return core.ThresholdKAsymptotic(n, pool, q, pOn)
}

// DesignK returns the smallest ring size whose Theorem 1 k-connectivity
// probability reaches target.
func DesignK(n, pool, q int, pOn float64, k int, target float64) (int, error) {
	return core.DesignK(n, pool, q, pOn, k, target)
}
