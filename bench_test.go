// Benchmarks regenerating every evaluation artifact of the paper (one bench
// per experiment E1–E8; the experiment ids are documented in the cmd/ tool
// that produces each artifact). Each iteration performs one unit of the
// experiment — typically "sample one topology and test the property" — so
// ns/op measures the cost of one Monte Carlo trial and the full experiment
// cost is trials × points × ns/op.
//
// BenchmarkDeployPipeline tracks the wsn.Deployer hot path that the cmd
// tools' sweeps run on: connectivity-only trials (no link keys derived)
// versus link-key-materializing trials, against the fresh-allocation
// one-shot Deploy.
//
// Run all:  go test -bench=. -benchmem .
package qcomposite_test

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"github.com/secure-wsn/qcomposite"
	"github.com/secure-wsn/qcomposite/internal/adversary"
	"github.com/secure-wsn/qcomposite/internal/channel"
	"github.com/secure-wsn/qcomposite/internal/experiment"
	"github.com/secure-wsn/qcomposite/internal/graphalgo"
	"github.com/secure-wsn/qcomposite/internal/keys"
	"github.com/secure-wsn/qcomposite/internal/montecarlo"
	"github.com/secure-wsn/qcomposite/internal/randgraph"
	"github.com/secure-wsn/qcomposite/internal/rng"
	"github.com/secure-wsn/qcomposite/internal/stats"
	"github.com/secure-wsn/qcomposite/internal/theory"
	"github.com/secure-wsn/qcomposite/internal/wsn"
)

// BenchmarkE1Figure1Trial measures one Figure 1 Monte Carlo trial (sample
// G_{n,q}(1000, K, 10000, p), test connectivity) for each of the six
// curves at its paper K* threshold, where the work is maximal-interesting.
func BenchmarkE1Figure1Trial(b *testing.B) {
	curves := []struct {
		name string
		q    int
		p    float64
		k    int // paper's K* for the curve
	}{
		{name: "q2_p1.0_K35", q: 2, p: 1.0, k: 35},
		{name: "q2_p0.5_K41", q: 2, p: 0.5, k: 41},
		{name: "q2_p0.2_K52", q: 2, p: 0.2, k: 52},
		{name: "q3_p1.0_K60", q: 3, p: 1.0, k: 60},
		{name: "q3_p0.5_K67", q: 3, p: 0.5, k: 67},
		{name: "q3_p0.2_K78", q: 3, p: 0.2, k: 78},
	}
	for _, c := range curves {
		b.Run(c.name, func(b *testing.B) {
			s, err := randgraph.NewQSampler(1000, c.k, 10000, c.q)
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := s.SampleComposite(r, c.p)
				if err != nil {
					b.Fatal(err)
				}
				_ = graphalgo.IsConnected(g)
			}
		})
	}
}

// BenchmarkE2KStarTable regenerates the full in-text K* table (six exact
// eq. (5) solves plus six asymptotic solves) per iteration.
func BenchmarkE2KStarTable(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, q := range []int{2, 3} {
			for _, p := range []float64{1, 0.5, 0.2} {
				if _, err := qcomposite.ThresholdK(1000, 10000, q, p); err != nil {
					b.Fatal(err)
				}
				if _, err := qcomposite.ThresholdKAsymptotic(1000, 10000, q, p); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkE3Theorem1Trial measures one Theorem 1 validation trial:
// sample at the paper scale and run the Even k-connectivity test, for
// k = 1, 2, 3.
func BenchmarkE3Theorem1Trial(b *testing.B) {
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			s, err := randgraph.NewQSampler(1000, 48, 10000, 2)
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := s.SampleComposite(r, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				_ = graphalgo.IsKConnected(g, k)
			}
		})
	}
}

// BenchmarkE4MinDegreeTrial measures one Lemma 8 trial: sample plus minimum
// degree scan.
func BenchmarkE4MinDegreeTrial(b *testing.B) {
	s, err := randgraph.NewQSampler(1000, 48, 10000, 2)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := s.SampleComposite(r, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		_ = g.MinDegree() >= 2
	}
}

// BenchmarkE5DegreeDistTrial measures one Lemma 9 trial: sample plus degree
// histogram plus Poisson comparison.
func BenchmarkE5DegreeDistTrial(b *testing.B) {
	s, err := randgraph.NewQSampler(1000, 43, 10000, 2)
	if err != nil {
		b.Fatal(err)
	}
	tProb, err := theory.EdgeProb(10000, 43, 2, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	lambda, err := theory.PoissonNodeCountMean(1000, tProb, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := s.SampleComposite(r, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		hist := g.DegreeHistogram()
		count := 0
		if len(hist) > 1 {
			count = hist[1]
		}
		_ = stats.PoissonPMF(lambda, count)
	}
}

// BenchmarkE6ZeroOneTrial measures one zero–one law trial at the largest
// default schedule point (n = 3200, plus branch).
func BenchmarkE6ZeroOneTrial(b *testing.B) {
	const (
		n    = 3200
		pool = 32000
		k    = 2
	)
	tTarget, err := theory.EdgeProbForAlpha(n, 4.0, k)
	if err != nil {
		b.Fatal(err)
	}
	ring, err := theory.RingSizeForEdgeProb(pool, 2, 0.5, tTarget)
	if err != nil {
		b.Fatal(err)
	}
	s, err := randgraph.NewQSampler(n, ring, pool, 2)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := s.SampleComposite(r, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		_ = graphalgo.IsKConnected(g, k)
	}
}

// BenchmarkDeployPipeline measures one full-network deployment trial at the
// Figure 1 scale (n = 1000, P = 10000, K = 41, q = 2, p = 0.5) in the three
// modes a Monte Carlo workload runs in:
//
//   - connectivity-only: a reused Deployer, no Link/Links access, so no
//     per-edge SHA-256 is ever paid (the Figure 1 trial shape);
//   - materialize-links: the same reused Deployer plus a Links() call that
//     lazily derives every link key (the adversary/E7 trial shape);
//   - fresh-deploy: the one-shot wsn.Deploy plus Links(), paying full
//     allocation every trial — the pre-Deployer upper bound.
//
// For history: the eager-derivation Deploy this package shipped before the
// Deployer refactor ran this exact connectivity-only trial at ≈ 61200
// allocs/op and 6.5 MB/op; the first Deployer brought it to ≈ 2020 allocs/op
// and 5.25 MB/op; the zero-allocation trial loop (reusable CSR builders,
// buffered channel sampling, scratch-backed connectivity) brought it to ≈ 1
// alloc/op — the per-Deploy rng.New — and the reseedable RNG (rng.Reseed
// reused by Deploy) removed that last one: steady state is 0 allocs/op,
// with residual B/op and allocs/op in short runs being amortized buffer
// growth.
func BenchmarkDeployPipeline(b *testing.B) {
	scheme, err := keys.NewQComposite(10000, 41, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := wsn.Config{Sensors: 1000, Scheme: scheme, Channel: channel.OnOff{P: 0.5}}

	b.Run("connectivity-only", func(b *testing.B) {
		d, err := wsn.NewDeployer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net, err := d.Deploy(uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := net.IsConnected(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialize-links", func(b *testing.B) {
		d, err := wsn.NewDeployer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net, err := d.Deploy(uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			if links := net.Links(); len(links) == 0 {
				b.Fatal("no links materialized")
			}
		}
	})
	b.Run("fresh-deploy", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := cfg
			cfg.Seed = uint64(i)
			net, err := wsn.Deploy(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if links := net.Links(); len(links) == 0 {
				b.Fatal("no links materialized")
			}
		}
	})

	// The size ladder: one connectivity trial per iteration at n = 10³ … 10⁶,
	// streaming (DeployConnectivity: edges flow through the intersector into a
	// union-find, early exit once connected) versus CSR (Deploy +
	// IsConnected). The design keeps the scheme fixed at K = 32, P = 512,
	// q = 2 (2-overlap probability s ≈ 0.59) and thins the channel with n —
	// p = d/n with d = 8·ln n / s — so the mean secure degree sits at 8·ln n,
	// deep in the connected plateau: the channel draw is Θ(n log n) edges
	// instead of Θ(n²), and the union-find spans after roughly the
	// (n/2)·ln n secure edges connectivity needs, so the early exit skips
	// ~7/8 of every draw (the CSR path must intersect all of it, then build
	// two CSR graphs and BFS). Each rung also runs the streaming degree mode
	// (DeployDegreeStats at k = 2), the graph-free Lemma 8 trial. The CSR arm
	// stops at n = 10⁵ (building 10⁶-node CSR graphs per iteration is the
	// cost the streaming paths exist to avoid); n = 10⁶ runs graph-free only
	// and is the scale acceptance artifact.
	b.Run("ladder", func(b *testing.B) {
		const (
			ladderPool = 512
			ladderRing = 32
			ladderQ    = 2
			sOverlap   = 0.594 // P[|ring∩ring| ≥ 2] at K=32, P=512
		)
		scheme, err := keys.NewQComposite(ladderPool, ladderRing, ladderQ)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
			p := 8 * math.Log(float64(n)) / sOverlap / float64(n)
			cfg := wsn.Config{Sensors: n, Scheme: scheme, Channel: channel.OnOff{P: p}}
			b.Run(fmt.Sprintf("n=%d/streaming", n), func(b *testing.B) {
				d, err := wsn.NewDeployer(cfg)
				if err != nil {
					b.Fatal(err)
				}
				connected := 0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st, err := d.DeployConnectivity(uint64(i))
					if err != nil {
						b.Fatal(err)
					}
					if st.Connected {
						connected++
					}
				}
				b.ReportMetric(float64(connected)/float64(b.N), "connected/op")
			})
			b.Run(fmt.Sprintf("n=%d/mindegree", n), func(b *testing.B) {
				// The streaming degree mode: the same graph-free pass with the
				// degree accumulator riding beside the union-find, answering
				// P[min degree ≥ 2] (the Lemma 8 statistic) at the same scale.
				// Its early exit needs every node at degree k, not just one
				// component, so it reads slightly more of each draw.
				d, err := wsn.NewDeployer(cfg)
				if err != nil {
					b.Fatal(err)
				}
				atLeast := 0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					st, err := d.DeployDegreeStats(uint64(i), 2)
					if err != nil {
						b.Fatal(err)
					}
					if st.MinDegreeAtLeastK {
						atLeast++
					}
				}
				b.ReportMetric(float64(atLeast)/float64(b.N), "mindeg2/op")
			})
			if n > 100_000 {
				continue
			}
			b.Run(fmt.Sprintf("n=%d/csr", n), func(b *testing.B) {
				d, err := wsn.NewDeployer(cfg)
				if err != nil {
					b.Fatal(err)
				}
				connected := 0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					net, err := d.Deploy(uint64(i))
					if err != nil {
						b.Fatal(err)
					}
					ok, err := net.IsConnected()
					if err != nil {
						b.Fatal(err)
					}
					if ok {
						connected++
					}
				}
				b.ReportMetric(float64(connected)/float64(b.N), "connected/op")
			})
		}
	})
}

// BenchmarkShardedSweep measures a full grid sweep at n = 4000 — eight ring
// sizes around the connectivity threshold, two connectivity trials each,
// every trial a complete deployment through the zero-allocation loop — with
// grid-point sharding off (PointWorkers = 1, one shard: the sequential
// upper bound) versus one shard per CPU. Per-point trial parallelism is
// pinned to 1 in both modes so the ratio isolates POINT-level scaling: with
// points ≫ shards it should approach the CPU count, and the estimates are
// bit-identical in both modes (pinned by the experiment package's
// equivalence tests). This is the perf-trajectory artifact for the sharded
// sweep runner.
func BenchmarkShardedSweep(b *testing.B) {
	const (
		n      = 4000
		pool   = 40000
		q      = 2
		pOn    = 0.5
		trials = 2
	)
	var ks []int
	for k := 40; k < 48; k++ {
		ks = append(ks, k)
	}
	grid := experiment.Grid{Ks: ks, Qs: []int{q}, Ps: []float64{pOn}}
	build := func(pt experiment.GridPoint) (montecarlo.Trial, error) {
		scheme, err := keys.NewQComposite(pool, pt.K, pt.Q)
		if err != nil {
			return nil, err
		}
		dp, err := wsn.NewDeployerPool(wsn.Config{
			Sensors: n,
			Scheme:  scheme,
			Channel: channel.OnOff{P: pt.P},
		})
		if err != nil {
			return nil, err
		}
		return func(trial int, r *rng.Rand) (bool, error) {
			d := dp.Get()
			defer dp.Put(d)
			net, err := d.DeployRand(r)
			if err != nil {
				return false, err
			}
			return net.IsConnected()
		}, nil
	}
	shardCounts := []int{1}
	if ncpu := runtime.NumCPU(); ncpu > 1 {
		shardCounts = append(shardCounts, ncpu)
	}
	for _, pw := range shardCounts {
		b.Run(fmt.Sprintf("n4000/pointworkers=%d", pw), func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := experiment.SweepProportion(ctx, grid,
					experiment.SweepConfig{Trials: trials, Workers: 1, PointWorkers: pw, Seed: 1},
					build)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != grid.Len() {
					b.Fatalf("got %d results, want %d", len(res), grid.Len())
				}
			}
		})
	}
}

// BenchmarkCrossSweep measures a radius-bound cross sweep at n = 2000 — six
// disk radii around the equivalent connectivity threshold, two trials each,
// every trial a full geometric-channel deployment — with one shard versus
// one shard per CPU (per-point trial workers pinned to 1, as in
// BenchmarkShardedSweep, so the ratio isolates point-level scaling). This is
// the perf-trajectory artifact for the cross-sweep layer: it tracks both the
// binding/deployment plumbing and the geometric sampler under the sweep.
func BenchmarkCrossSweep(b *testing.B) {
	const (
		n      = 2000
		pool   = 20000
		ring   = 45
		q      = 1
		trials = 2
	)
	radii := []float64{0.08, 0.09, 0.1, 0.11, 0.12, 0.13}
	grid := experiment.Grid{Ks: []int{ring}, Qs: []int{q}, Xs: radii}
	spec := experiment.CrossSpec{
		Bindings: []experiment.XBinding{experiment.BindDiskRadius},
		Torus:    true,
		Build: func(pt experiment.GridPoint) (wsn.Config, error) {
			scheme, err := keys.NewQComposite(pool, pt.K, pt.Q)
			if err != nil {
				return wsn.Config{}, err
			}
			return wsn.Config{Sensors: n, Scheme: scheme}, nil
		},
	}
	shardCounts := []int{1}
	if ncpu := runtime.NumCPU(); ncpu > 1 {
		shardCounts = append(shardCounts, ncpu)
	}
	for _, pw := range shardCounts {
		b.Run(fmt.Sprintf("n2000/pointworkers=%d", pw), func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := experiment.CrossSweep(ctx, grid,
					experiment.SweepConfig{Trials: trials, Workers: 1, PointWorkers: pw, Seed: 1}, spec)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != grid.Len() {
					b.Fatalf("got %d results, want %d", len(res), grid.Len())
				}
			}
		})
	}
}

// BenchmarkE7ResilienceTrial measures one resilience trial: deploy a
// 400-sensor network and run a 30-node capture attack.
func BenchmarkE7ResilienceTrial(b *testing.B) {
	pool, err := theory.PoolSizeForKeyShareProb(60, 2, 0.33)
	if err != nil {
		b.Fatal(err)
	}
	scheme, err := keys.NewQComposite(pool, 60, 2)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := wsn.Deploy(wsn.Config{
			Sensors: 400,
			Scheme:  scheme,
			Channel: channel.AlwaysOn{},
			Seed:    uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := adversary.CaptureRandom(net, r, 30); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8DiskModelTrial measures one disk-model trial: deploy under
// geometric channels and test connectivity of the secure topology.
func BenchmarkE8DiskModelTrial(b *testing.B) {
	scheme, err := keys.NewQComposite(5000, 36, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := wsn.Deploy(wsn.Config{
			Sensors: 500,
			Scheme:  scheme,
			Channel: channel.Disk{Radius: 0.4, Torus: true},
			Seed:    uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = graphalgo.IsConnected(net.FullSecureTopology())
	}
}
